#include "engine/simulation_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>
#include <utility>

#include "common/log.h"

namespace sraps {
namespace {

constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

/// Ticks needed to reach `target` from `from` on a grid of `step`-wide ticks
/// (i.e. the first k with from + k*step >= target).  Requires target > from.
SimDuration TicksToReach(SimTime from, SimTime target, SimDuration step) {
  return (target - from + step - 1) / step;
}

}  // namespace

SimulationEngine::SimulationEngine(SystemConfig config, std::vector<Job> jobs,
                                   std::unique_ptr<Scheduler> scheduler,
                                   EngineOptions options, AccountRegistry accounts)
    : config_(std::move(config)),
      jobs_(std::move(jobs)),
      scheduler_(std::move(scheduler)),
      options_(options),
      rm_(config_.TotalNodes(), options.allocation),
      power_model_(config_),
      accounts_(std::move(accounts)) {
  if (!scheduler_) throw std::invalid_argument("SimulationEngine: null scheduler");
  if (options_.sim_end <= options_.sim_start) {
    throw std::invalid_argument(
        "SimulationEngine: sim_end (" + std::to_string(options_.sim_end) +
        ") must be > sim_start (" + std::to_string(options_.sim_start) + ")");
  }
  if (options_.tick < 0) {
    throw std::invalid_argument("SimulationEngine: tick must be >= 0 (0 = telemetry "
                                "interval), got " + std::to_string(options_.tick));
  }
  if (options_.power_cap_w < 0.0) {
    throw std::invalid_argument("SimulationEngine: power cap must be >= 0 W (0 = "
                                "uncapped), got " + std::to_string(options_.power_cap_w));
  }
  for (const NodeOutage& o : options_.outages) {
    for (int n : o.nodes) {
      if (n < 0 || n >= config_.TotalNodes()) {
        throw std::invalid_argument(
            "SimulationEngine: outage at t=" + std::to_string(o.at) + " names node " +
            std::to_string(n) + ", outside [0, " +
            std::to_string(config_.TotalNodes()) + ") for system '" + config_.name +
            "'");
      }
    }
    RequireWindowIntersects("SimulationEngine: outage window", o.at, o.recover_at,
                            options_.sim_start, options_.sim_end);
  }
  ValidateGridEnvironment(options_.grid, "SimulationEngine");
  for (const DrWindow& w : options_.grid.dr_windows) {
    RequireWindowIntersects("SimulationEngine: demand-response window", w.start,
                            w.end, options_.sim_start, options_.sim_end);
  }
  tick_ = options_.tick > 0 ? options_.tick : config_.telemetry_interval;
  if (tick_ <= 0) throw std::invalid_argument("SimulationEngine: tick must be > 0");
  if (config_.cooling.topology.enabled()) {
    hr_matrix_ = std::make_unique<HeatRecirculationMatrix>(config_.cooling.topology,
                                                           config_.TotalNodes());
  }
  if (options_.enable_cooling) {
    if (!config_.cooling.has_cooling_model) {
      throw std::invalid_argument("SimulationEngine: system '" + config_.name +
                                  "' has no cooling model");
    }
    if (hr_matrix_) {
      // With a thermal topology the placement determines where heat lands;
      // the per-CDU model is the loop that can see that split.
      multi_cooling_ = std::make_unique<MultiCduCoolingModel>(config_.cooling);
    } else {
      cooling_ = std::make_unique<CoolingModel>(config_.cooling);
    }
  }
  SetupTransientThermal();
  Initialize();
}

SimulationEngine::SimulationEngine(RestoreTag, SystemConfig config,
                                   std::unique_ptr<Scheduler> scheduler,
                                   EngineOptions options, EngineState state)
    : config_(std::move(config)),
      jobs_(std::move(state.jobs)),
      scheduler_(std::move(scheduler)),
      options_(std::move(options)),
      rm_(std::move(*state.rm)),
      power_model_(config_),
      queue_(std::move(state.queue)),
      stats_(std::move(state.stats)),
      recorder_(std::move(state.recorder)),
      accounts_(std::move(state.accounts)),
      counters_(state.counters),
      now_(state.now) {
  // Validation happened in Restore(); this constructor only adopts the state
  // and rebuilds what Initialize() derives deterministically from options.
  tick_ = options_.tick > 0 ? options_.tick : config_.telemetry_interval;
  if (config_.cooling.topology.enabled()) {
    hr_matrix_ = std::make_unique<HeatRecirculationMatrix>(config_.cooling.topology,
                                                           config_.TotalNodes());
  }
  if (options_.enable_cooling) {
    if (hr_matrix_) {
      multi_cooling_ = std::make_unique<MultiCduCoolingModel>(*state.multi_cooling);
    } else {
      cooling_ = std::make_unique<CoolingModel>(*state.cooling);
    }
  }
  node_inlet_c_ = std::move(state.node_inlet_c);
  thermal_leak_j_ = state.thermal_leak_j;
  peak_inlet_c_ = state.peak_inlet_c;
  if (hr_matrix_) {
    if (node_inlet_c_.empty()) {
      // Pre-thermal snapshot restored onto a thermal config: start from the
      // supply setpoint, exactly like a fresh engine.
      node_inlet_c_.assign(config_.TotalNodes(), config_.cooling.supply_temp_c);
    }
    class_idle_heat_w_.clear();
    for (const MachineClassSpec& m : config_.machines) {
      class_idle_heat_w_.push_back(m.node_power.IdleW());
    }
  }
  SetupTransientThermal();
  if (transient_on_) {
    rack_temp_c_ = std::move(state.rack_temp_c);
    rack_class_tripped_ = std::move(state.rack_class_tripped);
    crac_supply_c_ = state.crac_supply_c;
    thermal_event_pending_ = state.thermal_event_pending;
    const auto racks = static_cast<std::size_t>(hr_matrix_->racks());
    const std::size_t classes = config_.machines.size();
    if (rack_temp_c_.empty()) {
      // Pre-transient snapshot restored onto a transient config: start from
      // the base supply, exactly like a fresh engine.
      rack_temp_c_.assign(racks, supply_base_c_);
      crac_supply_c_ = supply_base_c_;
    }
    if (rack_class_tripped_.empty()) rack_class_tripped_.assign(racks * classes, 0);
    // The tripped-node total is derived; rebuild it from the flags.
    tripped_node_count_ = 0;
    for (std::size_t i = 0; i < rack_class_tripped_.size(); ++i) {
      if (rack_class_tripped_[i]) tripped_node_count_ += rack_class_nodes_[i];
    }
  }
  events_this_tick_ = state.events_this_tick;
  submit_order_ = std::move(state.submit_order);
  next_submit_ = state.next_submit;
  BuildOutageSchedule();
  next_outage_begin_ = state.next_outage_begin;
  next_outage_end_ = state.next_outage_end;
  running_ = std::move(state.running);
  job_energy_j_ = std::move(state.job_energy_j);
  completions_ = std::move(state.completions);
  grid_cost_on_ = !options_.grid.price_usd_per_kwh.empty();
  grid_co2_on_ = !options_.grid.carbon_kg_per_kwh.empty();
  grid_events_ = options_.grid.BoundariesIn(options_.sim_start, options_.sim_end);
  if (state.next_grid_event > grid_events_.size()) {
    throw std::invalid_argument("SimulationEngine::Restore: grid-event cursor " +
                                std::to_string(state.next_grid_event) +
                                " outside the options' boundary schedule (" +
                                std::to_string(grid_events_.size()) + " entries)");
  }
  next_grid_event_ = state.next_grid_event;
  grid_cost_usd_ = state.grid_cost_usd;
  grid_co2_kg_ = state.grid_co2_kg;
  tick_wall_kwh_ = std::move(state.tick_wall_kwh);
  // Power-state vectors: adopt, then rebuild the derived per-class counters.
  node_pstate_ = std::move(state.node_pstate);
  node_mode_ = std::move(state.node_mode);
  wake_events_ = std::move(state.wake_events);
  class_energy_j_ = std::move(state.class_energy_j);
  if (node_pstate_.empty()) node_pstate_.assign(config_.TotalNodes(), 0);
  if (node_mode_.empty()) {
    node_mode_.assign(config_.TotalNodes(), NodePowerMode::kActive);
  }
  if (class_energy_j_.empty()) class_energy_j_.assign(config_.machines.size(), 0.0);
  class_c_idle_.assign(config_.machines.size(), 0);
  class_s_sleep_.assign(config_.machines.size(), 0);
  nonzero_pstate_nodes_ = 0;
  waking_nodes_ = 0;
  for (int n = 0; n < config_.TotalNodes(); ++n) {
    if (node_pstate_[n] != 0) ++nonzero_pstate_nodes_;
    switch (node_mode_[n]) {
      case NodePowerMode::kCIdle: ++class_c_idle_[config_.ClassOf(n)]; break;
      case NodePowerMode::kSSleep: ++class_s_sleep_[config_.ClassOf(n)]; break;
      case NodePowerMode::kWaking: ++waking_nodes_; break;
      case NodePowerMode::kActive: break;
    }
  }
  last_wall_power_w_ = state.last_wall_power_w;
  last_busy_power_w_ = state.last_busy_power_w;
  power_event_pending_ = state.power_event_pending;
  class_energy_on_ = scheduler_->WantsPowerStates();
  if (class_energy_on_ && !stats_.has_class_energy()) {
    std::vector<std::string> names;
    names.reserve(config_.machines.size());
    for (const MachineClassSpec& m : config_.machines) names.push_back(m.name);
    stats_.SetClassNames(std::move(names));
    stats_.SetClassEnergy(class_energy_j_);
  }
  ResolveHistoryChannels();
  initialized_ = true;
}

std::unique_ptr<SimulationEngine> SimulationEngine::Restore(
    SystemConfig config, std::unique_ptr<Scheduler> scheduler, EngineOptions options,
    EngineState state) {
  if (!scheduler) {
    throw std::invalid_argument("SimulationEngine::Restore: null scheduler");
  }
  if (!state.rm) {
    throw std::invalid_argument("SimulationEngine::Restore: state carries no "
                                "resource-manager snapshot");
  }
  if (state.jobs.size() != state.job_energy_j.size()) {
    throw std::invalid_argument(
        "SimulationEngine::Restore: job table (" + std::to_string(state.jobs.size()) +
        ") and energy accumulators (" + std::to_string(state.job_energy_j.size()) +
        ") disagree");
  }
  // The clock lands on tick boundaries, and the final one may overshoot
  // sim_end when the window length is not a tick multiple (TicksToReach
  // ceils) — an end-of-run snapshot legitimately carries that clock.
  const SimDuration tick =
      options.tick > 0 ? options.tick : config.telemetry_interval;
  if (state.now < options.sim_start ||
      (tick > 0 && state.now >= options.sim_end + tick)) {
    throw std::invalid_argument(
        "SimulationEngine::Restore: snapshot clock " + std::to_string(state.now) +
        " outside the window [" + std::to_string(options.sim_start) + ", " +
        std::to_string(options.sim_end) + ") plus its final tick");
  }
  const bool thermal_topology = config.cooling.topology.enabled();
  if (options.enable_cooling && !thermal_topology && !state.cooling) {
    throw std::invalid_argument("SimulationEngine::Restore: cooling is enabled but "
                                "the state carries no cooling-loop snapshot");
  }
  if (options.enable_cooling && thermal_topology && !state.multi_cooling) {
    throw std::invalid_argument(
        "SimulationEngine::Restore: cooling is enabled on a thermal topology "
        "but the state carries no per-CDU cooling snapshot");
  }
  if (!state.node_inlet_c.empty() &&
      state.node_inlet_c.size() != static_cast<std::size_t>(config.TotalNodes())) {
    throw std::invalid_argument(
        "SimulationEngine::Restore: node_inlet_c covers " +
        std::to_string(state.node_inlet_c.size()) + " nodes, system has " +
        std::to_string(config.TotalNodes()));
  }
  const auto total = static_cast<std::size_t>(config.TotalNodes());
  if (!state.node_pstate.empty() && state.node_pstate.size() != total) {
    throw std::invalid_argument(
        "SimulationEngine::Restore: node_pstate covers " +
        std::to_string(state.node_pstate.size()) + " nodes, system has " +
        std::to_string(total));
  }
  if (!state.node_mode.empty() && state.node_mode.size() != total) {
    throw std::invalid_argument(
        "SimulationEngine::Restore: node_mode covers " +
        std::to_string(state.node_mode.size()) + " nodes, system has " +
        std::to_string(total));
  }
  const auto racks = static_cast<std::size_t>(config.cooling.topology.racks);
  if (!state.rack_temp_c.empty() && state.rack_temp_c.size() != racks) {
    throw std::invalid_argument(
        "SimulationEngine::Restore: rack_temp_c covers " +
        std::to_string(state.rack_temp_c.size()) + " racks, topology has " +
        std::to_string(racks));
  }
  if (!state.rack_class_tripped.empty() &&
      state.rack_class_tripped.size() != racks * config.machines.size()) {
    throw std::invalid_argument(
        "SimulationEngine::Restore: rack_class_tripped covers " +
        std::to_string(state.rack_class_tripped.size()) +
        " (rack, class) pairs, system has " +
        std::to_string(racks * config.machines.size()));
  }
  return std::unique_ptr<SimulationEngine>(new SimulationEngine(
      RestoreTag{}, std::move(config), std::move(scheduler), std::move(options),
      std::move(state)));
}

void SimulationEngine::BuildOutageSchedule() {
  // Failure-injection schedule, sorted for cursor-based application.
  for (const NodeOutage& o : options_.outages) {
    outage_begins_.emplace_back(o.at, o.nodes);
    if (o.recover_at > o.at) outage_ends_.emplace_back(o.recover_at, o.nodes);
  }
  std::stable_sort(outage_begins_.begin(), outage_begins_.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::stable_sort(outage_ends_.begin(), outage_ends_.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
}

void SimulationEngine::ResolveHistoryChannels() {
  if (!options_.record_history) return;
  hist_.it_power = &recorder_.Mutable("it_power_kw");
  hist_.loss = &recorder_.Mutable("loss_kw");
  hist_.power = &recorder_.Mutable("power_kw");
  hist_.utilization = &recorder_.Mutable("utilization");
  hist_.queue_len = &recorder_.Mutable("queue_length");
  hist_.running = &recorder_.Mutable("running_jobs");
  if (options_.power_cap_w > 0.0 || !options_.grid.dr_windows.empty()) {
    hist_.throttle = &recorder_.Mutable("throttle_factor");
  }
  if (grid_cost_on_) hist_.price = &recorder_.Mutable("price_usd_per_kwh");
  if (grid_co2_on_) hist_.carbon = &recorder_.Mutable("carbon_kg_per_kwh");
  if (options_.enable_cooling) {
    hist_.pue = &recorder_.Mutable("pue");
    hist_.tower = &recorder_.Mutable("tower_return_c");
    hist_.supply = &recorder_.Mutable("supply_c");
    hist_.cooling_kw = &recorder_.Mutable("cooling_kw");
  }
  if (scheduler_->WantsPowerStates()) {
    hist_.nodes_asleep = &recorder_.Mutable("nodes_asleep");
    hist_.avg_freq = &recorder_.Mutable("avg_freq_scale");
  }
  if (hr_matrix_) {
    hist_.max_inlet = &recorder_.Mutable("max_inlet_c");
    hist_.thermal_leak = &recorder_.Mutable("thermal_leak_kw");
    hist_.rack_inlet.clear();
    for (int r = 0; r < hr_matrix_->racks(); ++r) {
      hist_.rack_inlet.push_back(
          &recorder_.Mutable("rack" + std::to_string(r) + "_inlet_c"));
    }
    if (multi_cooling_) hist_.cdu_spread = &recorder_.Mutable("cdu_spread_c");
  }
  if (transient_on_) {
    hist_.rack_transient.clear();
    for (int r = 0; r < hr_matrix_->racks(); ++r) {
      hist_.rack_transient.push_back(
          &recorder_.Mutable("rack" + std::to_string(r) + "_transient_c"));
    }
    if (crac_on_) hist_.crac_supply = &recorder_.Mutable("crac_supply_c");
    if (trip_on_) hist_.tripped_nodes = &recorder_.Mutable("tripped_nodes");
  }
  // Every channel gets exactly one sample per tick; one upfront reserve
  // keeps the hot-loop appends reallocation-free.
  const auto total_ticks = static_cast<std::size_t>(
      (options_.sim_end - options_.sim_start + tick_ - 1) / tick_);
  for (Channel* ch : {hist_.it_power, hist_.loss, hist_.power, hist_.utilization,
                      hist_.queue_len, hist_.running, hist_.throttle, hist_.price,
                      hist_.carbon, hist_.pue, hist_.tower, hist_.supply,
                      hist_.cooling_kw, hist_.nodes_asleep, hist_.avg_freq,
                      hist_.max_inlet, hist_.thermal_leak, hist_.cdu_spread,
                      hist_.crac_supply, hist_.tripped_nodes}) {
    if (!ch) continue;
    ch->times.reserve(total_ticks);
    ch->values.reserve(total_ticks);
  }
  for (Channel* ch : hist_.rack_inlet) {
    ch->times.reserve(total_ticks);
    ch->values.reserve(total_ticks);
  }
  for (Channel* ch : hist_.rack_transient) {
    ch->times.reserve(total_ticks);
    ch->values.reserve(total_ticks);
  }
}

void SimulationEngine::SetupTransientThermal() {
  const TransientThermalSpec& ts = config_.cooling.transient;
  if (!ts.enabled) return;
  if (!hr_matrix_) {
    throw std::invalid_argument(
        "SimulationEngine: cooling.transient is enabled but system '" +
        config_.name + "' declares no thermal topology (cooling.topology)");
  }
  transient_on_ = true;
  supply_base_c_ = config_.cooling.supply_temp_c;
  crac_on_ = ts.CracEnabled();
  if (crac_on_ && ts.crac_min_supply_c > supply_base_c_) {
    throw std::invalid_argument(
        "SimulationEngine: cooling.transient.crac_min_supply_c (" +
        std::to_string(ts.crac_min_supply_c) +
        ") exceeds cooling.supply_temp_c (" + std::to_string(supply_base_c_) +
        "); the CRAC loop only ever lowers the supply below its base");
  }
  const std::size_t classes = config_.machines.size();
  class_trip_c_.assign(classes, 0.0);
  trip_on_ = false;
  for (std::size_t c = 0; c < classes; ++c) {
    const MachineClassSpec& cls = config_.machines[c];
    // A class-level trip temperature overrides the global one; <= 0 on both
    // levels means nodes of this class never trip.
    class_trip_c_[c] = cls.thermal_trip_c > 0.0 ? cls.thermal_trip_c : ts.trip_inlet_c;
    trip_on_ = trip_on_ || class_trip_c_[c] > 0.0;
  }
  const auto racks = static_cast<std::size_t>(hr_matrix_->racks());
  rack_class_nodes_.assign(racks * classes, 0);
  for (int n = 0; n < config_.TotalNodes(); ++n) {
    const auto r = static_cast<std::size_t>(hr_matrix_->RackOf(n));
    rack_class_nodes_[r * classes + static_cast<std::size_t>(config_.ClassOf(n))] += 1;
  }
  rack_mean_c_.assign(racks, supply_base_c_);
}

void SimulationEngine::Initialize() {
  now_ = options_.sim_start;
  job_energy_j_.assign(jobs_.size(), std::nan(""));

  if (hr_matrix_) {
    // No heat has been integrated yet: every inlet sits at the supply
    // setpoint until the first span publishes real temperatures.
    node_inlet_c_.assign(config_.TotalNodes(), config_.cooling.supply_temp_c);
    class_idle_heat_w_.clear();
    for (const MachineClassSpec& m : config_.machines) {
      class_idle_heat_w_.push_back(m.node_power.IdleW());
    }
  }
  if (transient_on_) {
    const auto racks = static_cast<std::size_t>(hr_matrix_->racks());
    rack_temp_c_.assign(racks, supply_base_c_);
    crac_supply_c_ = supply_base_c_;
    rack_class_tripped_.assign(racks * config_.machines.size(), 0);
    tripped_node_count_ = 0;
    thermal_event_pending_ = false;
  }

  node_pstate_.assign(config_.TotalNodes(), 0);
  node_mode_.assign(config_.TotalNodes(), NodePowerMode::kActive);
  class_c_idle_.assign(config_.machines.size(), 0);
  class_s_sleep_.assign(config_.machines.size(), 0);
  class_energy_j_.assign(config_.machines.size(), 0.0);
  class_energy_on_ = scheduler_->WantsPowerStates();
  if (class_energy_on_) {
    std::vector<std::string> names;
    names.reserve(config_.machines.size());
    for (const MachineClassSpec& m : config_.machines) names.push_back(m.name);
    stats_.SetClassNames(std::move(names));
  }

  grid_cost_on_ = !options_.grid.price_usd_per_kwh.empty();
  grid_co2_on_ = !options_.grid.carbon_kg_per_kwh.empty();
  // Every time the effective cap, price, or carbon intensity can change
  // becomes an event: the calendar may not batch across one, and crossing
  // one marks the tick eventful so grid-reactive schedulers re-run.
  grid_events_ = options_.grid.BoundariesIn(options_.sim_start, options_.sim_end);

  ResolveHistoryChannels();
  BuildOutageSchedule();

  // Window semantics (§3.2.2 / Fig. 3): dismiss jobs entirely outside the
  // simulated window, and jobs too large for the machine.
  for (std::size_t h = 0; h < jobs_.size(); ++h) {
    Job& job = jobs_[h];
    const bool ended_before_window =
        job.recorded_end >= 0 && job.recorded_end <= options_.sim_start;
    const bool submitted_after_window = job.submit_time >= options_.sim_end;
    const bool oversize = job.nodes_required > rm_.total_nodes();
    if (ended_before_window || submitted_after_window || oversize) {
      job.state = JobState::kDismissed;
      ++counters_.dismissed;
      continue;
    }
    // Flag head/tail truncation relative to the window (footnote 1): no
    // telemetry ground truth exists for these spans.
    if (job.recorded_start >= 0 && job.recorded_start < options_.sim_start) {
      job.trace_flags.truncated_head = true;
    }
    if (job.recorded_end >= 0 && job.recorded_end > options_.sim_end) {
      job.trace_flags.truncated_tail = true;
    }
  }

  if (options_.prepopulate) Prepopulate();

  // Remaining pending jobs enter by submit order.
  for (std::size_t h = 0; h < jobs_.size(); ++h) {
    if (jobs_[h].state == JobState::kPending) submit_order_.push_back(h);
  }
  std::stable_sort(submit_order_.begin(), submit_order_.end(),
                   [&](JobQueue::Handle a, JobQueue::Handle b) {
                     return jobs_[a].submit_time < jobs_[b].submit_time;
                   });
  next_submit_ = 0;
  initialized_ = true;
}

void SimulationEngine::Prepopulate() {
  // Jobs running at sim_start are placed immediately so the twin starts in
  // the observed machine state rather than empty.  Their starts keep the
  // recorded value (so trace offsets line up) and they run to recorded_end.
  for (std::size_t h = 0; h < jobs_.size(); ++h) {
    Job& job = jobs_[h];
    if (job.state != JobState::kPending) continue;
    if (job.recorded_start < 0 || job.recorded_end < 0) continue;
    if (job.recorded_start >= options_.sim_start) continue;
    // recorded_end > sim_start is guaranteed (else dismissed above).
    std::vector<int> nodes;
    if (job.HasRecordedPlacement()) {
      bool ok = true;
      for (int n : job.recorded_nodes) {
        if (!rm_.IsFree(n)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        rm_.AllocateExact(job.recorded_nodes);
        nodes = job.recorded_nodes;
      }
    }
    if (nodes.empty()) {
      if (!rm_.CanAllocate(job.nodes_required)) {
        SRAPS_LOG_WARN << "prepopulate: no room for job " << job.id << " ("
                       << job.nodes_required << " nodes); dismissing";
        job.state = JobState::kDismissed;
        ++counters_.dismissed;
        continue;
      }
      nodes = rm_.Allocate(job.nodes_required);
    }
    job.assigned_nodes = std::move(nodes);
    job.start = job.recorded_start;
    job.end = job.recorded_end;
    job.state = JobState::kRunning;
    job_energy_j_[h] = 0.0;
    running_.push_back(h);
    PushCompletion(job.end, h);
    ++counters_.prepopulated;
    scheduler_->OnJobStarted(job);
  }
}

SimDuration SimulationEngine::RealizedRuntime(const Job& job) const {
  // Rescheduled jobs keep their *actual* recorded duration — the scheduler
  // only moves the start.  Jobs without a recorded runtime (live/synthetic
  // submissions) run to their wall-time limit.
  if (job.recorded_start >= 0 && job.recorded_end >= job.recorded_start) {
    return job.recorded_end - job.recorded_start;
  }
  if (job.time_limit > 0) return job.time_limit;
  throw std::logic_error("SimulationEngine: job " + std::to_string(job.id) +
                         " has neither recorded runtime nor time limit");
}

void SimulationEngine::ApplyOutages() {
  while (next_outage_begin_ < outage_begins_.size() &&
         outage_begins_[next_outage_begin_].first <= now_) {
    // A sleeping or mid-wake node hit by an outage is force-woken first so
    // MarkDown sees a free node and takes it straight out of service (its
    // pending wake event, if any, goes stale and is dropped lazily).
    for (int n : outage_begins_[next_outage_begin_].second) {
      if (!rm_.IsAsleep(n)) continue;
      rm_.MarkAwake(n);
      switch (node_mode_[n]) {
        case NodePowerMode::kCIdle: --class_c_idle_[config_.ClassOf(n)]; break;
        case NodePowerMode::kSSleep: --class_s_sleep_[config_.ClassOf(n)]; break;
        case NodePowerMode::kWaking: --waking_nodes_; break;
        case NodePowerMode::kActive: break;
      }
      node_mode_[n] = NodePowerMode::kActive;
    }
    rm_.MarkDown(outage_begins_[next_outage_begin_].second);
    ++next_outage_begin_;
    events_this_tick_ = true;
  }
  while (next_outage_end_ < outage_ends_.size() &&
         outage_ends_[next_outage_end_].first <= now_) {
    // Overlapping outage windows may already have recovered a node; only
    // bring back what is actually out of service.
    std::vector<int> to_recover;
    for (int n : outage_ends_[next_outage_end_].second) {
      if (rm_.IsDown(n) || rm_.IsPendingDown(n)) to_recover.push_back(n);
    }
    if (!to_recover.empty()) rm_.MarkUp(to_recover);
    ++next_outage_end_;
    events_this_tick_ = true;
  }
}

void SimulationEngine::ApplyGridEvents() {
  while (next_grid_event_ < grid_events_.size() &&
         grid_events_[next_grid_event_] <= now_) {
    ++next_grid_event_;
    ++counters_.grid_events;
    // A cap/price/carbon change is a system event: grid-reactive schedulers
    // (grid_aware holds jobs for cheap windows) must be re-invoked.
    events_this_tick_ = true;
  }
}

double SimulationEngine::EffectiveCapW() const {
  return options_.grid.EffectiveCapW(now_, options_.power_cap_w);
}

bool SimulationEngine::SetNodePState(int node, int p) {
  if (node < 0 || node >= config_.TotalNodes()) {
    throw std::out_of_range("SimulationEngine::SetNodePState: node " +
                            std::to_string(node) + " outside [0, " +
                            std::to_string(config_.TotalNodes()) + ")");
  }
  const MachineClassSpec& cls = config_.MachineClassOf(node);
  if (p < 0 || p >= cls.NumPStates()) return false;
  if (node_mode_[node] != NodePowerMode::kActive) return false;
  if (rm_.IsDown(node)) return false;
  if (node_pstate_[node] == static_cast<std::uint8_t>(p)) return false;
  const bool was_zero = node_pstate_[node] == 0;
  node_pstate_[node] = static_cast<std::uint8_t>(p);
  if (was_zero && p != 0) ++nonzero_pstate_nodes_;
  if (!was_zero && p == 0) --nonzero_pstate_nodes_;
  ++counters_.pstate_changes;
  power_event_pending_ = true;
  events_this_tick_ = true;
  return true;
}

bool SimulationEngine::SleepNode(int node, bool deep) {
  if (node < 0 || node >= config_.TotalNodes()) {
    throw std::out_of_range("SimulationEngine::SleepNode: node " +
                            std::to_string(node) + " outside [0, " +
                            std::to_string(config_.TotalNodes()) + ")");
  }
  const MachineClassSpec& cls = config_.MachineClassOf(node);
  const SleepStateSpec& state = deep ? cls.s_state : cls.c_state;
  if (!state.enabled) return false;
  if (node_mode_[node] != NodePowerMode::kActive) return false;
  if (!rm_.IsFree(node) || rm_.IsDown(node)) return false;
  rm_.MarkAsleep(node);
  const std::size_t c = config_.ClassOf(node);
  if (deep) {
    node_mode_[node] = NodePowerMode::kSSleep;
    ++class_s_sleep_[c];
  } else {
    node_mode_[node] = NodePowerMode::kCIdle;
    ++class_c_idle_[c];
  }
  ++counters_.nodes_slept;
  power_event_pending_ = true;
  events_this_tick_ = true;
  return true;
}

bool SimulationEngine::WakeNode(int node) {
  if (node < 0 || node >= config_.TotalNodes()) {
    throw std::out_of_range("SimulationEngine::WakeNode: node " +
                            std::to_string(node) + " outside [0, " +
                            std::to_string(config_.TotalNodes()) + ")");
  }
  const NodePowerMode mode = node_mode_[node];
  if (mode != NodePowerMode::kCIdle && mode != NodePowerMode::kSSleep) return false;
  const MachineClassSpec& cls = config_.MachineClassOf(node);
  const bool deep = mode == NodePowerMode::kSSleep;
  const std::size_t c = config_.ClassOf(node);
  if (deep) {
    --class_s_sleep_[c];
  } else {
    --class_c_idle_[c];
  }
  const SimDuration latency = cls.WakeLatencyS(deep);
  if (latency <= 0) {
    rm_.MarkAwake(node);
    node_mode_[node] = NodePowerMode::kActive;
    ++counters_.nodes_woken;
  } else {
    // During the transition the node draws active idle but stays
    // unallocatable; the wake event completes it (a calendar event, so the
    // batched path cannot hop across the latency).
    node_mode_[node] = NodePowerMode::kWaking;
    ++waking_nodes_;
    wake_events_.emplace_back(now_ + latency, node);
    std::push_heap(wake_events_.begin(), wake_events_.end(), std::greater<>{});
  }
  power_event_pending_ = true;
  events_this_tick_ = true;
  return true;
}

int SimulationEngine::NodePState(int node) const {
  if (node < 0 || node >= config_.TotalNodes()) {
    throw std::out_of_range("SimulationEngine::NodePState: node " +
                            std::to_string(node) + " outside [0, " +
                            std::to_string(config_.TotalNodes()) + ")");
  }
  return node_pstate_[node];
}

NodePowerMode SimulationEngine::NodeMode(int node) const {
  if (node < 0 || node >= config_.TotalNodes()) {
    throw std::out_of_range("SimulationEngine::NodeMode: node " +
                            std::to_string(node) + " outside [0, " +
                            std::to_string(config_.TotalNodes()) + ")");
  }
  return node_mode_[node];
}

int SimulationEngine::nodes_asleep() const {
  int total = waking_nodes_;
  for (int c : class_c_idle_) total += c;
  for (int s : class_s_sleep_) total += s;
  return total;
}

void SimulationEngine::ApplyWakeEvents() {
  while (!wake_events_.empty() && wake_events_.front().first <= now_) {
    const int node = wake_events_.front().second;
    std::pop_heap(wake_events_.begin(), wake_events_.end(), std::greater<>{});
    wake_events_.pop_back();
    // Stale entries (the node was force-woken by an outage, or went down
    // mid-wake) are simply dropped.
    if (node_mode_[node] != NodePowerMode::kWaking) continue;
    rm_.MarkAwake(node);
    node_mode_[node] = NodePowerMode::kActive;
    --waking_nodes_;
    ++counters_.nodes_woken;
    events_this_tick_ = true;
  }
}

void SimulationEngine::FillPowerContext(SchedulerContext& ctx) {
  ctx.config = &config_;
  ctx.node_pstate = &node_pstate_;
  ctx.node_mode = &node_mode_;
  ctx.effective_cap_w = EffectiveCapW();
  ctx.last_wall_power_w = last_wall_power_w_;
  ctx.last_busy_power_w = last_busy_power_w_;
  if (hr_matrix_) {
    ctx.hr_matrix = hr_matrix_.get();
    ctx.node_inlet_c = &node_inlet_c_;
    ctx.supply_temp_c = config_.cooling.supply_temp_c;
  }
}

void SimulationEngine::CallPowerPlan() {
  if (!scheduler_->WantsPowerStates()) return;
  if (options_.event_triggered_scheduling && !events_this_tick_) return;
  SchedulerContext ctx;
  ctx.now = now_;
  ctx.jobs = &jobs_;
  ctx.queue = &queue_;
  ctx.rm = &rm_;
  ctx.had_events = events_this_tick_;
  FillPowerContext(ctx);
  ++counters_.power_plan_invocations;
  const std::vector<PowerAction> actions = scheduler_->PlanPowerStates(ctx);
  for (const PowerAction& a : actions) {
    // Actions are proposals; anything stale (node went down, a job landed on
    // it, rung out of range) is skipped via the bool returns.
    if (a.node < 0 || a.node >= config_.TotalNodes()) continue;
    switch (a.kind) {
      case PowerAction::Kind::kSetPState: SetNodePState(a.node, a.pstate); break;
      case PowerAction::Kind::kSleep: SleepNode(a.node, a.deep); break;
      case PowerAction::Kind::kWake: WakeNode(a.node); break;
    }
  }
}

void SimulationEngine::PushCompletion(SimTime end, JobQueue::Handle h) {
  completions_.emplace_back(end, h);
  std::push_heap(completions_.begin(), completions_.end(), std::greater<>{});
}

void SimulationEngine::PopCompletion() {
  std::pop_heap(completions_.begin(), completions_.end(), std::greater<>{});
  completions_.pop_back();
}

SimTime SimulationEngine::NextCompletionTime() {
  while (!completions_.empty()) {
    const auto [end, h] = completions_.front();
    if (jobs_[h].state != JobState::kRunning) {
      PopCompletion();  // completed via an earlier sweep; entry is dead
      continue;
    }
    if (jobs_[h].end != end) {
      // Stale key: power-cap throttling dilated this job after the push.
      // Dilation only moves ends later, so re-keying on pop is safe.
      PopCompletion();
      PushCompletion(jobs_[h].end, h);
      continue;
    }
    return end;
  }
  return kNever;
}

void SimulationEngine::ClearCompleted() {
  // Step (1): release finished jobs *before* scheduling so a node can end
  // one job and start another within the same time step.  The heap top
  // bounds every running end from below, so the linear sweep (which keeps
  // running_ in start order for deterministic power summation) only runs on
  // steps where at least one job actually finishes.
  if (NextCompletionTime() > now_) return;
  std::vector<JobQueue::Handle> still_running;
  still_running.reserve(running_.size());
  for (JobQueue::Handle h : running_) {
    if (jobs_[h].end <= now_) {
      CompleteJob(h);
      events_this_tick_ = true;
    } else {
      still_running.push_back(h);
    }
  }
  running_.swap(still_running);
}

void SimulationEngine::CompleteJob(JobQueue::Handle h) {
  Job& job = jobs_[h];
  rm_.Release(job.assigned_nodes);
  job.state = JobState::kCompleted;
  ++counters_.completed;
  const double energy = job_energy_j_[h];
  stats_.RecordCompletion(job, energy);
  if (options_.track_accounts) accounts_.RecordCompletion(job, energy);
  scheduler_->OnJobCompleted(job);
}

void SimulationEngine::EnqueueEligible() {
  // Step (2): the twin observes jobs as they are submitted; nothing enters
  // the queue early, so schedules cannot be precomputed.
  while (next_submit_ < submit_order_.size()) {
    const JobQueue::Handle h = submit_order_[next_submit_];
    Job& job = jobs_[h];
    if (job.submit_time > now_) break;
    ++next_submit_;
    job.state = JobState::kQueued;
    queue_.Push(h);
    ++counters_.submitted;
    events_this_tick_ = true;
    scheduler_->OnJobSubmitted(job);
  }
}

void SimulationEngine::CallSchedule() {
  // Step (3).
  if (options_.event_triggered_scheduling && !events_this_tick_ && !queue_.empty() &&
      !scheduler_->NeedsTimeTriggered()) {
    ++counters_.scheduler_skips;
    return;
  }
  if (queue_.empty()) return;

  std::vector<RunningJobView> running_view;
  running_view.reserve(running_.size());
  for (JobQueue::Handle h : running_) {
    const Job& job = jobs_[h];
    SimDuration estimate;
    if (job.time_limit > 0) {
      estimate = job.time_limit;
    } else {
      estimate = job.end - job.start;  // perfect estimate fallback
    }
    running_view.push_back(
        {job.id, static_cast<int>(job.assigned_nodes.size()), job.start + estimate});
  }

  SchedulerContext ctx;
  ctx.now = now_;
  ctx.jobs = &jobs_;
  ctx.queue = &queue_;
  ctx.rm = &rm_;
  ctx.running = &running_view;
  ctx.had_events = events_this_tick_;
  FillPowerContext(ctx);
  ++counters_.scheduler_invocations;
  const std::vector<Placement> placements = scheduler_->Schedule(ctx);

  for (const Placement& p : placements) {
    if (p.handle >= jobs_.size()) {
      throw std::runtime_error("scheduler returned invalid handle");
    }
    if (jobs_[p.handle].state != JobState::kQueued) {
      throw std::runtime_error("scheduler placed job " +
                               std::to_string(jobs_[p.handle].id) +
                               " which is not queued");
    }
    StartJob(p.handle, p);
  }
}

void SimulationEngine::StartJob(JobQueue::Handle h, const Placement& placement) {
  Job& job = jobs_[h];
  const std::vector<int>& exact_nodes = placement.nodes;
  std::vector<int> nodes;
  if (!exact_nodes.empty()) {
    if (static_cast<int>(exact_nodes.size()) != job.nodes_required) {
      throw std::runtime_error("placement for job " + std::to_string(job.id) + " has " +
                               std::to_string(exact_nodes.size()) + " nodes, requires " +
                               std::to_string(job.nodes_required));
    }
    rm_.AllocateExact(exact_nodes);  // throws if the scheduler double-booked
    nodes = exact_nodes;
  } else if (placement.score) {
    nodes = rm_.AllocateScored(job.nodes_required, placement.score);
  } else {
    nodes = rm_.Allocate(job.nodes_required);
  }
  job.assigned_nodes = std::move(nodes);
  job.start = now_;
  if (placement.anchor_recorded_end && job.recorded_end > now_) {
    job.end = job.recorded_end;
  } else {
    job.end = now_ + RealizedRuntime(job);
  }
  job.state = JobState::kRunning;
  job_energy_j_[h] = 0.0;
  queue_.Remove(h);
  running_.push_back(h);
  PushCompletion(job.end, h);
  ++counters_.started;
  scheduler_->OnJobStarted(job);
}

SimDuration SimulationEngine::TicksUntilTraceChange(const Job& job,
                                                    SimDuration elapsed) const {
  constexpr SimDuration kFlat = std::numeric_limits<SimDuration>::max();
  const auto ticks_until = [&](const TraceSeries& t) -> SimDuration {
    const SimDuration off = t.NextOffsetAfter(elapsed);
    return off < 0 ? kFlat : TicksToReach(elapsed, off, tick_);
  };
  // The power model prefers the direct power trace; utilisation traces only
  // matter when it is absent, and a job with no traces draws nominal
  // (constant) busy power.
  if (!job.node_power_w.empty()) return ticks_until(job.node_power_w);
  SimDuration n = kFlat;
  if (!job.cpu_util.empty()) n = std::min(n, ticks_until(job.cpu_util));
  if (!job.gpu_util.empty()) n = std::min(n, ticks_until(job.gpu_util));
  return n;
}

SimDuration SimulationEngine::SpanTicks() {
  // A time-triggered scheduler (replay waits on recorded starts; external
  // simulators hold future reservations) may act on any tick while jobs are
  // queued — so may the per-tick scheduler when event triggering is off.
  if (!queue_.empty() &&
      (!options_.event_triggered_scheduling || scheduler_->NeedsTimeTriggered())) {
    return 1;
  }
  if (scheduler_->WantsPowerStates()) {
    // Without event triggering the power planner runs every tick, so the
    // calendar may not batch at all; a just-applied action makes the next
    // iteration eventful (re-plan), so it must be a single tick too.
    if (!options_.event_triggered_scheduling) return 1;
    if (power_event_pending_) return 1;
  }
  SimTime next = NextCompletionTime();
  if (!wake_events_.empty()) next = std::min(next, wake_events_.front().first);
  if (next_submit_ < submit_order_.size()) {
    next = std::min(next, jobs_[submit_order_[next_submit_]].submit_time);
  }
  if (next_outage_begin_ < outage_begins_.size()) {
    next = std::min(next, outage_begins_[next_outage_begin_].first);
  }
  if (next_outage_end_ < outage_ends_.size()) {
    next = std::min(next, outage_ends_[next_outage_end_].first);
  }
  if (next_grid_event_ < grid_events_.size()) {
    // Cap / price / carbon boundaries: the effective cap and signal values
    // are provably constant on every tick short of the next one.
    next = std::min(next, grid_events_[next_grid_event_]);
  }
  // RunUntilExact's limit: stop the hop exactly at the requested boundary.
  // Splitting the span is bit-identical for everything but the
  // calendar_steps/batched_ticks diagnostics (see RunUntilExact).
  if (span_limit_ < options_.sim_end) next = std::min(next, span_limit_);
  // Every pending event lies strictly ahead (<= now_ was processed this
  // step), and throttle dilation only moves completions later, so hopping to
  // the first tick at or past `next` can never skip over an event.
  const SimDuration remaining = TicksToReach(now_, options_.sim_end, tick_);
  SimDuration n = next == kNever
                      ? remaining
                      : std::min(remaining, TicksToReach(now_, next, tick_));
  // Bound the span by the next trace-sample boundary of any running job so
  // one power computation provably covers every tick in it (this is also
  // where an active power cap gets re-evaluated: throttle can only change
  // when sampled power does).
  for (JobQueue::Handle h : running_) {
    if (n <= 1) break;
    n = std::min(n, TicksUntilTraceChange(jobs_[h], now_ - jobs_[h].start));
  }
  return std::max<SimDuration>(1, n);
}

void SimulationEngine::ApplyThermalLayer(PowerSample& power, bool machine_idle) {
  if (!hr_matrix_) return;
  const double supply = config_.cooling.supply_temp_c;
  const double fan_leak = config_.cooling.topology.fan_leak_w_per_k;
  const auto total = static_cast<std::size_t>(config_.TotalNodes());
  if (machine_idle) {
    // Fully idle machine (every node active at P0, including down nodes,
    // which draw idle in the electrical model too): heat is the per-class
    // idle draw, so the inlet temperatures and the leak are pure constants.
    // The matvec result is cached like idle_sample_; the O(N) heat fill
    // still runs because the multi-CDU split below reads node_heat_w_.
    node_heat_w_.resize(total);
    for (std::size_t n = 0; n < total; ++n) {
      node_heat_w_[n] = class_idle_heat_w_[config_.ClassOf(static_cast<int>(n))];
    }
    if (idle_leak_w_ < 0.0) {
      hr_matrix_->InletTemps(node_heat_w_, supply, &idle_inlet_c_);
      idle_leak_w_ = 0.0;
      for (double t : idle_inlet_c_) idle_leak_w_ += std::max(0.0, t - supply);
      idle_leak_w_ *= fan_leak;
    }
    inlet_scratch_ = idle_inlet_c_;
    thermal_leak_w_ = idle_leak_w_;
  } else {
    node_heat_w_.resize(total);
    for (std::size_t n = 0; n < total; ++n) {
      const double busy_w = node_busy_w_scratch_[n];
      if (busy_w >= 0.0) {
        node_heat_w_[n] = busy_w;
        continue;
      }
      const int node = static_cast<int>(n);
      const MachineClassSpec& cls = config_.MachineClassOf(node);
      switch (node_mode_[n]) {
        case NodePowerMode::kCIdle:
          node_heat_w_[n] = cls.SleepPowerW(false);
          break;
        case NodePowerMode::kSSleep:
          node_heat_w_[n] = cls.SleepPowerW(true);
          break;
        default:
          node_heat_w_[n] = class_idle_heat_w_[config_.ClassOf(node)];
          break;
      }
    }
    hr_matrix_->InletTemps(node_heat_w_, supply, &inlet_scratch_);
    double excess_k = 0.0;
    for (double t : inlet_scratch_) excess_k += std::max(0.0, t - supply);
    thermal_leak_w_ = fan_leak * excess_k;
  }
  // The leak is rack-fan overhead, not job power: it joins the idle share of
  // the IT draw, so cap throttling still sheds only job power and the
  // per-job energy integration below stays untouched.
  power.it_power_w += thermal_leak_w_;
  power.loss_w = power_model_.conversion().LossW(power.it_power_w);
  power.wall_power_w = power.it_power_w + power.loss_w;
}

void SimulationEngine::TransientPhysicsTick(double& supply_c,
                                            std::vector<double>& rack_c) const {
  const TransientThermalSpec& ts = config_.cooling.transient;
  const double dt = static_cast<double>(tick_);
  if (crac_on_) {
    // CRAC supply control: track the hottest rack inlet toward the target by
    // adjusting the supply, slew-limited, floored at crac_min and never above
    // the base setpoint (the loop only ever removes heat).
    double hottest = rack_c.empty() ? supply_c : rack_c[0];
    for (const double t : rack_c) hottest = std::max(hottest, t);
    double desired = supply_c - (hottest - ts.crac_target_max_inlet_c);
    // Manual max-then-min instead of std::clamp: SetupTransientThermal only
    // guarantees crac_min <= base, so the two bounds are applied in a fixed
    // order rather than assumed consistent per call.
    desired = std::max(desired, ts.crac_min_supply_c);
    desired = std::min(desired, supply_base_c_);
    double delta = desired - supply_c;
    const double max_step = ts.crac_slew_c_per_s * dt;
    delta = std::max(-max_step, std::min(max_step, delta));
    supply_c += delta;
  }
  // First-order rack lag toward the quasi-static target.  When the CRAC has
  // not moved the supply, the target IS the quasi-static rack mean, bitwise —
  // that equality is what makes the zero-mass degenerate case reproduce the
  // pre-transient channels exactly.
  const double alpha =
      ts.rack_tau_s <= 0.0 ? 1.0 : dt / (ts.rack_tau_s + dt);
  for (std::size_t r = 0; r < rack_c.size(); ++r) {
    const double target = supply_c == supply_base_c_
                              ? rack_mean_c_[r]
                              : supply_c + (rack_mean_c_[r] - supply_base_c_);
    if (alpha >= 1.0) {
      rack_c[r] = target;  // zero thermal mass: assignment, not arithmetic
    } else {
      rack_c[r] += alpha * (target - rack_c[r]);
    }
  }
}

SimDuration SimulationEngine::TransientSpanBound(SimDuration n) {
  // Trip/clear edges must land on step boundaries: simulate the span's
  // transient trajectory on scratch copies and stop at the first tick whose
  // temperatures would flip any (rack, class) trip flag.  The executor then
  // repeats the identical arithmetic on the real state, so prediction and
  // execution agree bit for bit.
  if (n <= 1) return n;
  const TransientThermalSpec& ts = config_.cooling.transient;
  pred_rack_c_ = rack_temp_c_;
  double supply = crac_supply_c_;
  const std::size_t classes = config_.machines.size();
  for (SimDuration k = 1; k <= n; ++k) {
    TransientPhysicsTick(supply, pred_rack_c_);
    for (std::size_t r = 0; r < pred_rack_c_.size(); ++r) {
      for (std::size_t c = 0; c < classes; ++c) {
        const double trip_c = class_trip_c_[c];
        if (trip_c <= 0.0 || rack_class_nodes_[r * classes + c] == 0) continue;
        const bool tripped = rack_class_tripped_[r * classes + c] != 0;
        if (!tripped && pred_rack_c_[r] > trip_c) return k;
        if (tripped && pred_rack_c_[r] < trip_c - ts.clear_margin_c) return k;
      }
    }
  }
  return n;
}

bool SimulationEngine::ApplyThermalFlips() {
  const TransientThermalSpec& ts = config_.cooling.transient;
  const std::size_t classes = config_.machines.size();
  bool flipped = false;
  for (std::size_t r = 0; r < rack_temp_c_.size(); ++r) {
    for (std::size_t c = 0; c < classes; ++c) {
      const double trip_c = class_trip_c_[c];
      const std::size_t idx = r * classes + c;
      if (trip_c <= 0.0 || rack_class_nodes_[idx] == 0) continue;
      if (!rack_class_tripped_[idx] && rack_temp_c_[r] > trip_c) {
        rack_class_tripped_[idx] = 1;
        tripped_node_count_ += rack_class_nodes_[idx];
        ++counters_.thermal_trips;
        flipped = true;
      } else if (rack_class_tripped_[idx] &&
                 rack_temp_c_[r] < trip_c - ts.clear_margin_c) {
        rack_class_tripped_[idx] = 0;
        tripped_node_count_ -= rack_class_nodes_[idx];
        ++counters_.thermal_clears;
        flipped = true;
      }
    }
  }
  return flipped;
}

double SimulationEngine::JobTripFactor(const Job& job) const {
  const std::size_t classes = config_.machines.size();
  for (const int node : job.assigned_nodes) {
    const auto r = static_cast<std::size_t>(hr_matrix_->RackOf(node));
    if (rack_class_tripped_[r * classes +
                            static_cast<std::size_t>(config_.ClassOf(node))]) {
      return config_.cooling.transient.trip_throttle;
    }
  }
  return 1.0;
}

SimDuration SimulationEngine::AdvanceTicks(SimDuration n) {
  // Step (4), batched: the caller guarantees ticks 2..n are event-free with
  // the same sampled power as tick 1, so one power/throttle computation
  // covers the whole span and every per-tick arithmetic below repeats the
  // tick-by-tick loop operation for operation.
  // Power states are "active" only while some node is off P0 or in a C/S
  // state; nodes mid-wake draw active idle, which the legacy arithmetic
  // already models, so a waking-only machine stays on the fast path.
  int sleeping_nodes = 0;
  for (int c : class_c_idle_) sleeping_nodes += c;
  for (int s : class_s_sleep_) sleeping_nodes += s;
  const bool ps_active = nonzero_pstate_nodes_ > 0 || sleeping_nodes > 0;
  // Thermal-trip dilation state entering the span.  Flips can only happen at
  // the span's last tick (TransientSpanBound truncates to guarantee it), so
  // the flags are span-constant for the dilation arithmetic below.
  const bool trips_active = trip_on_ && tripped_node_count_ > 0;

  PowerSample power;
  const bool use_idle_cache = running_.empty() && !ps_active;
  if (use_idle_cache) {
    // A fully idle machine draws a constant: every node at idle power.
    // P-states never stale the cache — they only scale busy dynamic power,
    // and this branch requires every node active at P0.
    if (!idle_sample_) {
      idle_sample_ = power_model_.Compute(
          {}, now_, nullptr, nullptr, nullptr,
          class_energy_on_ ? &idle_class_w_ : nullptr);
    }
    power = *idle_sample_;
    job_power_scratch_.clear();
  } else {
    running_scratch_.clear();
    running_scratch_.reserve(running_.size());
    for (JobQueue::Handle h : running_) running_scratch_.push_back(&jobs_[h]);
    const PowerStateView psv{&node_pstate_, &class_c_idle_, &class_s_sleep_};
    power = power_model_.Compute(running_scratch_, now_, &job_power_scratch_,
                                 ps_active ? &psv : nullptr,
                                 ps_active ? &job_freq_scratch_ : nullptr,
                                 class_energy_on_ ? &class_w_scratch_ : nullptr,
                                 hr_matrix_ ? &node_busy_w_scratch_ : nullptr);
  }

  // Thermal topology: fold the span's per-node heat through the
  // recirculation matrix and add the temperature-dependent fan/leakage
  // overhead before the cap reads the wall power.  Inputs are exactly the
  // span-constant sampled draws, so the result is span-constant too and the
  // calendar stays bit-identical to tick stepping.
  ApplyThermalLayer(power, use_idle_cache);

  // Per-rack mean quasi-static inlets, shared by the transient-thermal
  // targets and the rack history channels below.  Summation order matches
  // the original per-rack channel fill exactly, so the zero-mass degenerate
  // case reproduces the quasi-static values bit for bit.
  if (hr_matrix_ && (transient_on_ || hist_.max_inlet)) {
    const int per_rack = hr_matrix_->nodes_per_rack();
    const auto racks = static_cast<std::size_t>(hr_matrix_->racks());
    rack_mean_c_.resize(racks);
    for (int r = 0; r < static_cast<int>(racks); ++r) {
      double sum = 0.0;
      for (int k = 0; k < per_rack; ++k) {
        sum += inlet_scratch_[static_cast<std::size_t>(r * per_rack + k)];
      }
      rack_mean_c_[static_cast<std::size_t>(r)] = sum / per_rack;
    }
  }

  // Thermal-trip edges must land on step boundaries in both stepping modes:
  // truncate the span at the first tick whose transient temperatures would
  // flip a trip flag.  RC/CRAC state alone generates no events, so spans
  // stay unbounded when no trip temperature is configured.
  if (trip_on_) n = TransientSpanBound(n);
  if (n > 1 && !queue_.empty()) {
    // Ticks 2..n would each take CallSchedule's event-free skip branch.
    counters_.scheduler_skips += static_cast<std::size_t>(n - 1);
  }

  // The *demand* the machine sampled this span (pre-cap, post-P-state): what
  // pace_to_cap reads to decide whether the ladder must step down to fit the
  // effective cap — by the time uniform throttling has clipped the draw, the
  // excess is invisible in the post-throttle wall power.
  last_wall_power_w_ = power.wall_power_w;
  last_busy_power_w_ = power.busy_power_w;

  // Demand watch (SetPowerWatch): record the first step whose pre-cap demand
  // would make a cap of threshold_w (or tighter) bind — the same comparison
  // the throttle below performs against its cap.  Demand is span-constant
  // (trace boundaries bound spans), so the span start is the exact first
  // tick, in tick and calendar mode alike.
  if (power_watch_threshold_w_ > 0.0 &&
      power_watch_tripped_at_ == std::numeric_limits<SimTime>::max() &&
      power.wall_power_w > power_watch_threshold_w_ && power.busy_power_w > 0.0) {
    power_watch_tripped_at_ = now_;
  }

  // Facility power cap: throttle all running jobs uniformly so the wall
  // power meets the cap; runtimes dilate by the inverse factor.  The cap in
  // force is dynamic — the static cap tightened by any active demand-
  // response window — and is constant across the span: DR edges are
  // calendar events, so no span straddles a cap change.
  const double dt = static_cast<double>(tick_);
  const double cap_w = EffectiveCapW();
  double throttle = 1.0;
  if (cap_w > 0.0 && power.wall_power_w > cap_w && power.busy_power_w > 0.0) {
    const double idle_wall = power.wall_power_w - power.busy_power_w;
    throttle = (cap_w - idle_wall) / power.busy_power_w;
    throttle = std::max(0.1, std::min(1.0, throttle));  // DVFS floor at 10 %
    const double shed = (1.0 - throttle) * power.busy_power_w;
    power.busy_power_w -= shed;
    power.it_power_w -= shed;
    power.loss_w = power_model_.conversion().LossW(power.it_power_w);
    power.wall_power_w = power.it_power_w + power.loss_w;
    // Runtime dilation: each tick only completes `throttle * dt` worth of
    // work, so each job's end recedes by the missing dt*(1 - throttle) per
    // tick (net progress per tick is then exactly throttle * dt).  The
    // completion heap is not touched here; its keys are re-built lazily.
    if (!ps_active && !trips_active) {
      const auto extension =
          static_cast<SimDuration>(std::llround(dt * (1.0 - throttle)));
      for (JobQueue::Handle h : running_) jobs_[h].end += extension * n;
    }
  }
  if (ps_active && !trips_active) {
    // With power states a job's net progress per tick is throttle * freq
    // (the slowest rung across its nodes), so each job dilates by its own
    // missing share.  A rung change is a power event bounding spans to one
    // tick, so freq is constant across the span — same discipline as the
    // cap.  freq == 1 and throttle == 1 reproduces the uncapped path
    // exactly: no extension, ends untouched.
    for (std::size_t i = 0; i < running_.size(); ++i) {
      const double freq = i < job_freq_scratch_.size() ? job_freq_scratch_[i] : 1.0;
      const double eff = throttle * freq;
      if (eff >= 1.0) continue;
      const auto ext = static_cast<SimDuration>(std::llround(dt * (1.0 - eff)));
      jobs_[running_[i]].end += ext * n;
    }
  }
  if (trips_active) {
    // Thermal-trip dilation composes multiplicatively with the cap and
    // P-state factors, exactly like freq composes with throttle above.
    // Dilation only (duty-cycle semantics): a throttled node keeps its
    // sampled draw while its work slows, so wall power stays span-constant
    // and the cap / demand-watch reasoning above is untouched.  Ends only
    // move later, preserving the completion heap's lazy re-key invariant.
    for (std::size_t i = 0; i < running_.size(); ++i) {
      const double freq = ps_active && i < job_freq_scratch_.size()
                              ? job_freq_scratch_[i]
                              : 1.0;
      const double eff = throttle * freq * JobTripFactor(jobs_[running_[i]]);
      if (eff >= 1.0) continue;
      const auto ext = static_cast<SimDuration>(std::llround(dt * (1.0 - eff)));
      jobs_[running_[i]].end += ext * n;
    }
  }

  // Accumulate per-job energy over the span, reusing the draws Compute just
  // sampled.  The per-tick increment is constant, but the running sum must
  // reproduce the tick loop's repeated addition bit for bit, so it is added
  // n times rather than multiplied.
  for (std::size_t i = 0; i < running_.size(); ++i) {
    const double increment = job_power_scratch_[i] * throttle * dt;
    double acc = job_energy_j_[running_[i]];
    for (SimDuration k = 0; k < n; ++k) acc += increment;
    job_energy_j_[running_[i]] = acc;
  }

  // Per-class IT energy breakdown (power-state schedulers only, so the
  // legacy fast paths stay free of the O(classes) span work).  Sampled IT
  // draw, pre-cap-throttle; repeated addition for tick/calendar identity.
  if (class_energy_on_) {
    const std::vector<double>& class_w =
        use_idle_cache ? idle_class_w_ : class_w_scratch_;
    for (std::size_t c = 0; c < class_energy_j_.size(); ++c) {
      const double inc = class_w[c] * dt;
      double acc = class_energy_j_[c];
      for (SimDuration k = 0; k < n; ++k) acc += inc;
      class_energy_j_[c] = acc;
    }
    stats_.SetClassEnergy(class_energy_j_);
  }

  // Grid accounting: wall energy priced at the signals in force now.  Signal
  // boundaries are calendar events, so both values are constant across the
  // span and the per-tick increments repeat the tick loop's additions bit
  // for bit (same repeated-addition discipline as the job energy above).
  const double price_now =
      grid_cost_on_ ? options_.grid.price_usd_per_kwh.At(now_) : 0.0;
  const double carbon_now =
      grid_co2_on_ ? options_.grid.carbon_kg_per_kwh.At(now_) : 0.0;
  if (!cooling_ && !multi_cooling_ &&
      (grid_cost_on_ || grid_co2_on_ || options_.capture_grid_basis)) {
    const double kwh_per_tick = power.wall_power_w * dt / 3.6e6;
    // Replay basis: the exact per-tick kWh the integration below multiplies
    // by the signal values, so ReplayGridAccounting can redo the same
    // additions under re-scaled signals bit for bit.
    if (options_.capture_grid_basis) {
      tick_wall_kwh_.insert(tick_wall_kwh_.end(), static_cast<std::size_t>(n),
                            kwh_per_tick);
    }
    const double cost_inc = kwh_per_tick * price_now;
    const double co2_inc = kwh_per_tick * carbon_now;
    if (grid_cost_on_ || grid_co2_on_) {
      for (SimDuration k = 0; k < n; ++k) {
        grid_cost_usd_ += cost_inc;
        grid_co2_kg_ += co2_inc;
      }
    }
  }

  if (options_.record_history) {
    const auto count = static_cast<std::size_t>(n);
    hist_.it_power->AppendSpan(now_, tick_, count, power.it_power_w / 1000.0);
    hist_.loss->AppendSpan(now_, tick_, count, power.loss_w / 1000.0);
    if (!cooling_ && !multi_cooling_) {
      hist_.power->AppendSpan(now_, tick_, count, power.wall_power_w / 1000.0);
    }
    hist_.utilization->AppendSpan(now_, tick_, count, power.node_utilization * 100.0);
    hist_.queue_len->AppendSpan(now_, tick_, count,
                                static_cast<double>(queue_.size()));
    hist_.running->AppendSpan(now_, tick_, count,
                              static_cast<double>(running_.size()));
    if (hist_.throttle) {
      hist_.throttle->AppendSpan(now_, tick_, count, throttle);
    }
    if (hist_.price) hist_.price->AppendSpan(now_, tick_, count, price_now);
    if (hist_.carbon) hist_.carbon->AppendSpan(now_, tick_, count, carbon_now);
    if (hist_.nodes_asleep) {
      hist_.nodes_asleep->AppendSpan(
          now_, tick_, count, static_cast<double>(sleeping_nodes + waking_nodes_));
    }
    if (hist_.avg_freq) {
      const double avg =
          power.busy_nodes > 0 ? power.busy_freq_sum / power.busy_nodes : 1.0;
      hist_.avg_freq->AppendSpan(now_, tick_, count, avg);
    }
    if (hist_.max_inlet) {
      // Inlet temperatures are span-constant (they are a pure function of
      // the span's sampled heat), so the per-rack heatmap channels batch
      // like every other electrical channel.
      double max_inlet = config_.cooling.supply_temp_c;
      for (double t : inlet_scratch_) max_inlet = std::max(max_inlet, t);
      hist_.max_inlet->AppendSpan(now_, tick_, count, max_inlet);
      hist_.thermal_leak->AppendSpan(now_, tick_, count,
                                     thermal_leak_w_ / 1000.0);
      for (std::size_t r = 0; r < hist_.rack_inlet.size(); ++r) {
        hist_.rack_inlet[r]->AppendSpan(now_, tick_, count, rack_mean_c_[r]);
      }
    }
  }

  if (cooling_) {
    // The loop's thermal state keeps its first-order lag even when the
    // electrical side is flat, so it (and the wall power that includes its
    // fans/pumps) advances tick by tick within the span — as does the grid
    // accounting, whose cost basis includes the cooling draw.
    for (SimDuration i = 0; i < n; ++i) {
      const CoolingSample cool = cooling_->Step(power.it_power_w, power.loss_w, dt);
      const double wall_w = power.wall_power_w + cool.cooling_power_w;
      if (grid_cost_on_ || grid_co2_on_ || options_.capture_grid_basis) {
        const double kwh = wall_w * dt / 3.6e6;
        if (options_.capture_grid_basis) tick_wall_kwh_.push_back(kwh);
        if (grid_cost_on_ || grid_co2_on_) {
          grid_cost_usd_ += kwh * price_now;
          grid_co2_kg_ += kwh * carbon_now;
        }
      }
      if (options_.record_history) {
        const SimTime t = now_ + i * tick_;
        hist_.power->Append(t, wall_w / 1000.0);
        hist_.pue->Append(t, cool.pue);
        hist_.tower->Append(t, cool.tower_return_temp_c);
        hist_.supply->Append(t, cool.supply_temp_c);
        hist_.cooling_kw->Append(t, cool.cooling_power_w / 1000.0);
      }
    }
  }

  if (multi_cooling_) {
    // Placement-dependent heat split: each node's throttled draw plus its
    // fan-leak share lands on its rack's CDU (rack r feeds CDU r % num_cdus).
    // The split is a pure function of span-constant quantities, so it is
    // computed once and the per-tick loop below only advances the loops'
    // first-order lags — mirroring the lumped-cooling branch above.
    const int num_cdus = multi_cooling_->num_cdus();
    per_cdu_heat_scratch_.assign(static_cast<std::size_t>(num_cdus), 0.0);
    const double supply = config_.cooling.supply_temp_c;
    const double fan_leak = config_.cooling.topology.fan_leak_w_per_k;
    for (std::size_t node = 0; node < node_heat_w_.size(); ++node) {
      const bool busy =
          !use_idle_cache && node_busy_w_scratch_[node] >= 0.0;
      const double leak_share =
          fan_leak * std::max(0.0, inlet_scratch_[node] - supply);
      const double q =
          node_heat_w_[node] * (busy ? throttle : 1.0) + leak_share;
      const int cdu = hr_matrix_->RackOf(static_cast<int>(node)) % num_cdus;
      per_cdu_heat_scratch_[static_cast<std::size_t>(cdu)] += q;
    }
    for (SimDuration i = 0; i < n; ++i) {
      const MultiCduSample mc =
          multi_cooling_->Step(per_cdu_heat_scratch_, power.loss_w, dt);
      const double wall_w = power.wall_power_w + mc.facility.cooling_power_w;
      if (grid_cost_on_ || grid_co2_on_ || options_.capture_grid_basis) {
        const double kwh = wall_w * dt / 3.6e6;
        if (options_.capture_grid_basis) tick_wall_kwh_.push_back(kwh);
        if (grid_cost_on_ || grid_co2_on_) {
          grid_cost_usd_ += kwh * price_now;
          grid_co2_kg_ += kwh * carbon_now;
        }
      }
      if (options_.record_history) {
        const SimTime t = now_ + i * tick_;
        hist_.power->Append(t, wall_w / 1000.0);
        hist_.pue->Append(t, mc.facility.pue);
        hist_.tower->Append(t, mc.facility.tower_return_temp_c);
        hist_.supply->Append(t, mc.facility.supply_temp_c);
        hist_.cooling_kw->Append(t, mc.facility.cooling_power_w / 1000.0);
        hist_.cdu_spread->Append(t, mc.spread_c);
      }
    }
  }

  if (transient_on_) {
    // Rack RC state and the CRAC loop evolve tick by tick within the span —
    // per-tick repeated iteration, not a closed-form exponential: iteration
    // is what keeps RunUntilExact's span splits bit-identical (see DESIGN.md).
    // The span bound above guarantees trip flips can only occur at the last
    // tick, so applying flips after each tick's physics reproduces the
    // tick-stepped order exactly.
    for (SimDuration i = 0; i < n; ++i) {
      TransientPhysicsTick(crac_supply_c_, rack_temp_c_);
      if (trip_on_ && ApplyThermalFlips()) thermal_event_pending_ = true;
      if (options_.record_history) {
        const SimTime t = now_ + i * tick_;
        for (std::size_t r = 0; r < rack_temp_c_.size(); ++r) {
          hist_.rack_transient[r]->Append(t, rack_temp_c_[r]);
        }
        if (hist_.crac_supply) hist_.crac_supply->Append(t, crac_supply_c_);
        if (hist_.tripped_nodes) {
          hist_.tripped_nodes->Append(t, static_cast<double>(tripped_node_count_));
        }
      }
    }
  }

  if (grid_cost_on_ || grid_co2_on_) {
    stats_.SetGridTotals(grid_cost_usd_, grid_co2_kg_);
  }

  if (hr_matrix_) {
    // Thermal stats: leak energy by repeated addition (tick/calendar
    // identity, like every other accumulator) and the run-wide hottest
    // inlet any node saw.
    const double leak_inc = thermal_leak_w_ * dt;
    for (SimDuration k = 0; k < n; ++k) thermal_leak_j_ += leak_inc;
    for (const double t : inlet_scratch_) {
      peak_inlet_c_ = std::max(peak_inlet_c_, t);
    }
    stats_.SetThermalTotals(thermal_leak_j_, peak_inlet_c_);
  }

  // Publish this span's inlet temperatures for the next scheduling pass.
  // Scheduling only happens on event-bearing ticks, which bound calendar
  // spans, so tick and calendar modes publish (and read) the same values.
  if (hr_matrix_) node_inlet_c_.swap(inlet_scratch_);

  now_ += n * tick_;
  events_this_tick_ = false;
  return n;
}

bool SimulationEngine::StepOnce() {
  if (!initialized_) throw std::logic_error("SimulationEngine: not initialised");
  if (now_ >= options_.sim_end) return false;
  if (power_event_pending_) {
    // A power action applied last iteration is an event for this one, so
    // iterative planners (pace_to_cap's rung walk) observe its effect and
    // re-plan — in tick and calendar mode alike.
    events_this_tick_ = true;
    power_event_pending_ = false;
  }
  if (thermal_event_pending_) {
    // A trip/clear edge at the end of the last span is an event for this
    // step: the scheduler observes the throttled (or recovered) nodes at the
    // same sim time in tick and calendar mode.
    events_this_tick_ = true;
    thermal_event_pending_ = false;
  }
  const std::size_t started_before = counters_.started;
  const std::size_t completed_before = counters_.completed;
  ClearCompleted();
  ApplyOutages();
  ApplyWakeEvents();
  ApplyGridEvents();
  EnqueueEligible();
  CallPowerPlan();
  CallSchedule();
  if (class_energy_on_ && (counters_.started != started_before ||
                           counters_.completed != completed_before)) {
    // A start or completion moved the IT demand; make the next tick an event
    // so the power planner re-plans against the post-change wall power (the
    // same way an applied power action forces a re-plan).  Identical in tick
    // and calendar mode: CallSchedule runs on the same ticks in both.
    power_event_pending_ = true;
  }
  if (options_.event_calendar) {
    const SimDuration n = SpanTicks();
    ++counters_.calendar_steps;
    // AdvanceTicks may truncate the span (thermal-trip edges), so the
    // batching diagnostics count the ticks actually advanced.
    const SimDuration advanced = AdvanceTicks(n);
    if (advanced > 1) counters_.batched_ticks += static_cast<std::size_t>(advanced);
  } else {
    AdvanceTicks(1);
  }
  return true;
}

void SimulationEngine::Run() {
  while (StepOnce()) {
  }
  // Final sweep so jobs ending exactly at sim_end are credited.
  ClearCompleted();
}

void SimulationEngine::RunUntil(SimTime t) {
  while (now_ < t && StepOnce()) {
  }
}

void SimulationEngine::RunUntilExact(SimTime t) {
  span_limit_ = t;
  while (now_ < t && StepOnce()) {
  }
  span_limit_ = std::numeric_limits<SimTime>::max();
}

void SimulationEngine::SetPowerWatch(double threshold_w) {
  power_watch_threshold_w_ = threshold_w;
  power_watch_tripped_at_ = std::numeric_limits<SimTime>::max();
}

EngineState SimulationEngine::CaptureState() const {
  EngineState s;
  s.jobs = jobs_;
  s.queue = queue_;
  s.rm = rm_;
  s.stats = stats_;
  s.recorder = recorder_;
  s.accounts = accounts_;
  s.counters = counters_;
  s.now = now_;
  s.events_this_tick = events_this_tick_;
  s.submit_order = submit_order_;
  s.next_submit = next_submit_;
  s.next_outage_begin = next_outage_begin_;
  s.next_outage_end = next_outage_end_;
  s.next_grid_event = next_grid_event_;
  s.running = running_;
  s.job_energy_j = job_energy_j_;
  s.completions = completions_;
  s.grid_cost_usd = grid_cost_usd_;
  s.grid_co2_kg = grid_co2_kg_;
  if (cooling_) s.cooling = *cooling_;
  s.tick_wall_kwh = tick_wall_kwh_;
  s.node_pstate = node_pstate_;
  s.node_mode = node_mode_;
  s.wake_events = wake_events_;
  s.class_energy_j = class_energy_j_;
  s.last_wall_power_w = last_wall_power_w_;
  s.last_busy_power_w = last_busy_power_w_;
  s.power_event_pending = power_event_pending_;
  s.node_inlet_c = node_inlet_c_;
  if (multi_cooling_) s.multi_cooling = *multi_cooling_;
  s.thermal_leak_j = thermal_leak_j_;
  s.peak_inlet_c = peak_inlet_c_;
  s.rack_temp_c = rack_temp_c_;
  s.crac_supply_c = crac_supply_c_;
  s.rack_class_tripped = rack_class_tripped_;
  s.thermal_event_pending = thermal_event_pending_;
  return s;
}

void SimulationEngine::ReplayGridAccounting() {
  if (!options_.capture_grid_basis) {
    throw std::logic_error("SimulationEngine::ReplayGridAccounting: the run was "
                           "not captured with capture_grid_basis");
  }
  const auto elapsed =
      static_cast<std::size_t>((now_ - options_.sim_start) / tick_);
  if (tick_wall_kwh_.size() != elapsed) {
    throw std::logic_error(
        "SimulationEngine::ReplayGridAccounting: basis covers " +
        std::to_string(tick_wall_kwh_.size()) + " ticks, clock has advanced " +
        std::to_string(elapsed));
  }
  for (Channel* ch : {hist_.price, hist_.carbon}) {
    if (ch && ch->values.size() != tick_wall_kwh_.size()) {
      throw std::logic_error("SimulationEngine::ReplayGridAccounting: recorded "
                             "signal channel and basis length disagree");
    }
  }
  grid_cost_usd_ = 0.0;
  grid_co2_kg_ = 0.0;
  // Same per-tick additions as AdvanceTicks, in the same order: within a
  // calendar span the stored kWh repeats and the signal value is constant
  // (boundaries bound spans), so kwh*price reproduces the span's cost_inc bit
  // for bit and the repeated additions match the batched loop's.
  for (std::size_t k = 0; k < tick_wall_kwh_.size(); ++k) {
    const SimTime t = options_.sim_start + static_cast<SimDuration>(k) * tick_;
    const double price_now =
        grid_cost_on_ ? options_.grid.price_usd_per_kwh.At(t) : 0.0;
    const double carbon_now =
        grid_co2_on_ ? options_.grid.carbon_kg_per_kwh.At(t) : 0.0;
    grid_cost_usd_ += tick_wall_kwh_[k] * price_now;
    grid_co2_kg_ += tick_wall_kwh_[k] * carbon_now;
    if (hist_.price) hist_.price->values[k] = price_now;
    if (hist_.carbon) hist_.carbon->values[k] = carbon_now;
  }
  if (grid_cost_on_ || grid_co2_on_) {
    stats_.SetGridTotals(grid_cost_usd_, grid_co2_kg_);
  }
}

}  // namespace sraps
