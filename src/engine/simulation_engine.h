// The S-RAPS simulation engine (§3.2.3): a forward-time loop whose every
// iteration runs four well-defined steps —
//   (1) preparation: completed jobs are cleared, freeing resources;
//   (2) eligibility: jobs whose submit time has passed enter the queue;
//   (3) schedule: the pluggable scheduler proposes placements, the resource
//       manager executes them;
//   (4) tick: the DCDT physical simulators (power, conversion loss, cooling)
//       advance and the clock increments.
//
// With EngineOptions::event_calendar set, step (4) advances the clock
// directly to the next interesting time — job submit, earliest completion
// (a lazily re-keyed min-heap), outage edge, trace-sample boundary — and
// replays the skipped span into the power/cooling/telemetry models as one
// batched integration step.  Recorded history, stats, and counters stay
// bit-identical to the tick-stepped loop (tests/test_engine_events.cc).
//
// The engine also implements the paper's window semantics: jobs that ended
// before the simulation start or were submitted after its end are dismissed;
// jobs already running at the start prepopulate the system so the twin
// reflects the observed machine state rather than filling from empty
// (§3.2.3 footnote 2).
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "accounts/accounts.h"
#include "config/system_config.h"
#include "cooling/cooling_model.h"
#include "cooling/heat_recirculation.h"
#include "cooling/multi_cdu.h"
#include "grid/grid_environment.h"
#include "power/system_power.h"
#include "sched/scheduler.h"
#include "stats/stats.h"
#include "telemetry/recorder.h"
#include "workload/job.h"
#include "workload/job_queue.h"

namespace sraps {

/// A planned node outage for what-if availability studies (§4.1 footnote 5:
/// the open datasets lack down/drained-node data; the twin lets you inject
/// it).  Busy nodes drain — they leave service when their job completes.
struct NodeOutage {
  SimTime at = 0;          ///< when the outage begins
  SimTime recover_at = 0;  ///< when the nodes return (<= at means never)
  std::vector<int> nodes;
};

struct EngineOptions {
  SimTime sim_start = 0;
  SimTime sim_end = 0;                     ///< exclusive; must be > sim_start
  SimDuration tick = 0;                    ///< 0 = use the system's telemetry interval
  bool enable_cooling = false;             ///< requires config.cooling.has_cooling_model
  bool record_history = true;              ///< fill the TimeSeriesRecorder channels
  bool prepopulate = true;                 ///< place jobs already running at sim_start
  bool event_triggered_scheduling = true;  ///< skip scheduler on event-free ticks
  bool track_accounts = false;             ///< accumulate per-account stats
  std::vector<NodeOutage> outages;         ///< failure-injection schedule
  AllocationStrategy allocation = AllocationStrategy::kLowestFirst;
  /// System power cap (wall watts; 0 = uncapped).  When the instantaneous
  /// wall power would exceed the cap, all running jobs are throttled
  /// uniformly: their power contribution scales down and their runtime
  /// dilates inversely — the facility-level power-capping what-if the twin
  /// enables (cf. the GPU power-capping study of Patki et al. [28]).
  double power_cap_w = 0.0;
  /// Time-varying grid context: price/carbon signals drive incremental cost
  /// and emissions accounting, and demand-response windows lower the
  /// effective power cap over their span (EffectiveCapW = min of the static
  /// cap and every active window).  Signal boundaries and window edges are
  /// event-calendar events, so the fast path stays bit-identical.
  GridEnvironment grid;
  /// Event-calendar fast path: hop the clock from event to event instead of
  /// iterating physics-free ticks.  Every tick is still accounted for in the
  /// recorded history and energy integration — the skipped span is replayed
  /// in one batched step — so results are bit-identical to tick stepping.
  bool event_calendar = false;
  /// Record the per-tick wall energy (kWh) alongside the run so grid cost and
  /// emissions can be *replayed* after the fact against re-scaled price or
  /// carbon signals (ReplayGridAccounting).  This is what lets a prefix-
  /// sharing sweep run the trajectory once and fork per signal-scale variant
  /// with bit-identical accounting.  Off by default: it costs 8 bytes per
  /// simulated tick.
  bool capture_grid_basis = false;
};

/// Aggregate counters available after (or during) a run.
struct EngineCounters {
  std::size_t submitted = 0;              ///< jobs that entered the queue
  std::size_t started = 0;                ///< jobs placed by the scheduler
  std::size_t completed = 0;              ///< jobs run to completion
  std::size_t dismissed = 0;              ///< outside the window or oversize
  std::size_t prepopulated = 0;           ///< running at sim start, placed directly
  std::size_t scheduler_invocations = 0;  ///< Schedule() calls
  std::size_t scheduler_skips = 0;        ///< event-free ticks skipped
  std::size_t calendar_steps = 0;         ///< event-calendar loop iterations
  std::size_t batched_ticks = 0;          ///< ticks covered by batched spans (n > 1)
  std::size_t grid_events = 0;            ///< grid signal/DR boundaries crossed
  std::size_t power_plan_invocations = 0; ///< PlanPowerStates() calls
  std::size_t pstate_changes = 0;         ///< applied SetNodePState transitions
  std::size_t nodes_slept = 0;            ///< applied C/S sleep transitions
  std::size_t nodes_woken = 0;            ///< completed wake transitions
  std::size_t thermal_trips = 0;          ///< (rack, class) thermal-trip edges
  std::size_t thermal_clears = 0;         ///< (rack, class) trip-clear edges
};

/// Deep copy of every mutable field of a SimulationEngine between steps —
/// the engine-level payload of a SimStateSnapshot (core/snapshot.h).  The
/// immutable parts (system config, options, power model, tick width) are NOT
/// here; SimulationEngine::Restore reconstructs them from the config and
/// options it is given, which is what allows a fork to resume under a
/// *compatible variant* of the original options (e.g. re-scaled grid
/// signals).  The completion heap is stored as its exact underlying array so
/// pop order — including tie order — survives the round trip bit for bit.
struct EngineState {
  std::vector<Job> jobs;              ///< full job table incl. realised state
  JobQueue queue;                     ///< queued handles, in queue order
  std::optional<ResourceManager> rm;  ///< node occupancy/outage state
  SimulationStats stats;              ///< completion records + grid totals
  TimeSeriesRecorder recorder;        ///< recorded history channels
  AccountRegistry accounts;           ///< accumulating per-account stats
  EngineCounters counters;
  SimTime now = 0;                             ///< engine clock
  bool events_this_tick = true;
  std::vector<JobQueue::Handle> submit_order;  ///< pending jobs by submit time
  std::size_t next_submit = 0;                 ///< cursor into submit_order
  std::size_t next_outage_begin = 0;           ///< outage-schedule cursors
  std::size_t next_outage_end = 0;
  std::size_t next_grid_event = 0;        ///< grid-boundary cursor
  std::vector<JobQueue::Handle> running;  ///< running handles, start order
  std::vector<double> job_energy_j;       ///< per-job energy accumulators
  /// Exact min-heap array of (candidate end, handle) completion entries.
  std::vector<std::pair<SimTime, JobQueue::Handle>> completions;
  double grid_cost_usd = 0.0;           ///< accumulated cost ($)
  double grid_co2_kg = 0.0;             ///< accumulated emissions (kg)
  std::optional<CoolingModel> cooling;  ///< thermal loop state, when coupled
  /// Per-tick wall kWh from sim_start to `now` (empty unless the run was
  /// started with EngineOptions::capture_grid_basis).
  std::vector<double> tick_wall_kwh;
  // --- per-node power state (tentpole of the machine-class redesign) ---
  std::vector<std::uint8_t> node_pstate;   ///< ladder rung per global node
  std::vector<NodePowerMode> node_mode;    ///< active / C / S / waking
  /// Exact min-heap array of (wake time, node) transition events, captured
  /// verbatim like `completions` so a fork pops in the same order.
  std::vector<std::pair<SimTime, int>> wake_events;
  std::vector<double> class_energy_j;      ///< per-class IT energy accumulators
  double last_wall_power_w = 0.0;          ///< previous tick's wall draw
  double last_busy_power_w = 0.0;          ///< previous tick's busy share
  bool power_event_pending = false;        ///< a power action fired last step
  // --- thermal topology (tentpole of the thermal-placement redesign) ---
  /// Per-node inlet temperatures of the last integrated span — scheduler-
  /// visible state, so a fork must resume from the same values.  Empty when
  /// no thermal topology is configured (Restore re-initialises to the
  /// supply setpoint if the config declares one).
  std::vector<double> node_inlet_c;
  /// Per-CDU cooling-loop state, present when cooling is coupled on a
  /// system with a thermal topology (replaces the lumped `cooling` state).
  std::optional<MultiCduCoolingModel> multi_cooling;
  /// Running fan/leakage energy and peak inlet temperature (thermal stats).
  double thermal_leak_j = 0.0;
  double peak_inlet_c = 0.0;
  // --- transient thermal layer (cooling.transient) ---
  /// Per-rack transient inlet temperatures (RC state).  Empty when the
  /// transient layer is off (Restore re-initialises from the base supply
  /// when the config enables it and the state predates the feature).
  std::vector<double> rack_temp_c;
  /// CRAC-controlled supply setpoint; equals the base supply when the CRAC
  /// loop is off or has not moved yet.
  double crac_supply_c = 0.0;
  /// Per-(rack, class) thermal-trip flags, racks × classes row-major.
  std::vector<std::uint8_t> rack_class_tripped;
  /// A trip/clear edge fired at the end of the last advanced span; the next
  /// step is eventful (mirrors power_event_pending).
  bool thermal_event_pending = false;
};

class SimulationEngine {
 public:
  /// Takes ownership of jobs and scheduler.  `accounts` may carry a
  /// collection-phase registry to continue accumulating into; when null and
  /// track_accounts is set, a fresh registry is created.
  SimulationEngine(SystemConfig config, std::vector<Job> jobs,
                   std::unique_ptr<Scheduler> scheduler, EngineOptions options,
                   AccountRegistry accounts = AccountRegistry());

  /// Runs the loop to sim_end.
  void Run();

  /// Steps until the clock reaches `t` (i.e. stops at the first step
  /// boundary with now() >= t) or the window ends.  Unlike Run(), the final
  /// end-of-window completion sweep is NOT performed, so a snapshot taken
  /// here and resumed with Run() finishes exactly like an uninterrupted run.
  void RunUntil(SimTime t);

  /// RunUntil, but the clock lands *exactly* on the first tick boundary at
  /// or past `t` instead of overshooting to the end of a batched span: the
  /// limit bounds SpanTicks, splitting the span that would straddle it.
  /// Splitting is bit-identical for jobs, stats, history, and accounting —
  /// every per-tick quantity accumulates by repeated addition, so a span of
  /// n ticks equals a+b ticks operation for operation — and only the
  /// calendar_steps/batched_ticks counters (diagnostics, not results)
  /// differ.  This is what lets a snapshot-tree sweep stop at an arbitrary
  /// first-effect bound and fork there (sweep/tree).
  void RunUntilExact(SimTime t);

  // --- power watch (first-effect probe for power_cap_w sweeps) -------------
  /// Arms a demand watch: the engine records the first step whose *pre-cap*
  /// sampled wall demand exceeds `threshold_w` while jobs draw busy power —
  /// exactly the condition under which a run capped at `threshold_w` (or any
  /// tighter cap) would first throttle and diverge from this one.  Purely
  /// observational: the trajectory is untouched.  0 disarms.
  void SetPowerWatch(double threshold_w);
  /// The step-start time at which the armed watch first tripped, or
  /// SimTime max while it has not.
  SimTime power_watch_tripped_at() const { return power_watch_tripped_at_; }

  /// The resolved tick width (options tick, or the system's telemetry
  /// interval when that was 0).
  SimDuration tick() const { return tick_; }

  /// Deep-copies the engine's entire mutable state (the scheduler is cloned
  /// separately via Scheduler::Clone — see Simulation::Snapshot()).  Valid
  /// between steps, i.e. any time Run/RunUntil/StepOnce is not executing.
  EngineState CaptureState() const;

  /// Builds an engine that resumes from `state` instead of initialising from
  /// scratch.  `config` and `options` must describe the same simulation the
  /// state was captured from — window, tick, outage schedule, and grid
  /// boundary times are trusted, not re-derived — except that grid signal
  /// *values* may differ when the caller replays accounting afterwards
  /// (ReplayGridAccounting).  Throws std::invalid_argument on a null
  /// scheduler or a state/options shape mismatch.
  static std::unique_ptr<SimulationEngine> Restore(SystemConfig config,
                                                   std::unique_ptr<Scheduler> scheduler,
                                                   EngineOptions options,
                                                   EngineState state);

  /// Recomputes grid cost, emissions, and the recorded price/carbon history
  /// channels from the captured per-tick energy basis against the *current*
  /// options' grid signals, reproducing the incremental integration of an
  /// uninterrupted run bit for bit (same per-tick additions, same order).
  /// Requires the engine to have been run (or restored) with
  /// capture_grid_basis; throws std::logic_error otherwise.
  void ReplayGridAccounting();

  /// Advances one step — one tick, or one event-calendar hop (possibly many
  /// ticks) when event_calendar is set.  Returns false once the window is
  /// exhausted.
  bool StepOnce();

  // --- observers -----------------------------------------------------------
  /// The engine clock.
  SimTime now() const { return now_; }
  /// The options the engine was constructed (or restored) with.
  const EngineOptions& options() const { return options_; }
  const EngineCounters& counters() const { return counters_; }
  const SimulationStats& stats() const { return stats_; }
  const TimeSeriesRecorder& recorder() const { return recorder_; }
  const AccountRegistry& accounts() const { return accounts_; }
  /// The engine-owned job table, indexed by JobQueue::Handle.
  const std::vector<Job>& jobs() const { return jobs_; }
  const ResourceManager& resource_manager() const { return rm_; }
  const JobQueue& queue() const { return queue_; }
  const SystemConfig& config() const { return config_; }
  Scheduler& scheduler() { return *scheduler_; }
  const Scheduler& scheduler() const { return *scheduler_; }
  std::size_t running_count() const { return running_.size(); }

  /// Per-job simulated energy (J); indexed like jobs().  NaN until completed.
  const std::vector<double>& job_energy_j() const { return job_energy_j_; }

  // --- per-node power states (scheduler-visible knobs) ---------------------
  /// Clocks `node` to ladder rung `p` of its machine class.  Returns false
  /// (without side effects) when the transition is invalid: rung outside the
  /// class ladder, node down, asleep, or already at `p`.  Throws
  /// std::out_of_range for a node id outside the machine.
  bool SetNodePState(int node, int p);
  /// Puts a free, active, in-service node into its class's C (deep=false) or
  /// S (deep=true) state.  Returns false when the node is busy, down,
  /// already asleep/waking, or its class lacks the requested state.  Throws
  /// std::out_of_range for a bad node id.
  bool SleepNode(int node, bool deep);
  /// Starts the wake transition of a sleeping node; the node becomes
  /// allocatable after its class's wake latency, modeled as an engine event
  /// (zero latency wakes immediately).  Returns false when the node is not
  /// in a C/S state.  Throws std::out_of_range for a bad node id.
  bool WakeNode(int node);
  /// The ladder rung `node` is clocked to (0 = full speed).
  int NodePState(int node) const;
  /// The power mode `node` is in.
  NodePowerMode NodeMode(int node) const;
  /// Nodes currently in a C/S state or mid-wake.
  int nodes_asleep() const;
  /// Per-class IT energy accumulators (J), indexed like config().machines.
  /// All zero unless the scheduler manages power states.
  const std::vector<double>& class_energy_j() const { return class_energy_j_; }

  /// Cumulative wall-energy cost ($) integrated against the grid price
  /// signal, and emissions (kg CO2) against the carbon-intensity signal.
  /// 0 when the corresponding signal is absent.  Bit-identical between the
  /// tick loop and the event calendar.
  double grid_cost_usd() const { return grid_cost_usd_; }
  double grid_co2_kg() const { return grid_co2_kg_; }

  // --- thermal topology (scheduler-visible placement context) --------------
  /// The heat-recirculation matrix, or null when the system's cooling spec
  /// declares no thermal topology.
  const HeatRecirculationMatrix* hr_matrix() const { return hr_matrix_.get(); }
  /// Per-node inlet temperatures of the last integrated span (empty without
  /// a topology).  What the thermal placement policies score against.
  const std::vector<double>& node_inlet_c() const { return node_inlet_c_; }
  /// Fan/leakage overhead (W) the last span added to the IT draw.
  double thermal_leak_w() const { return thermal_leak_w_; }

  // --- transient thermal layer (cooling.transient) -------------------------
  /// Per-rack transient inlet temperatures (RC state); empty when the
  /// transient layer is off.
  const std::vector<double>& rack_transient_c() const { return rack_temp_c_; }
  /// The CRAC-controlled supply setpoint (== the base supply when the CRAC
  /// loop is off).
  double crac_supply_c() const { return crac_supply_c_; }
  /// Nodes currently under thermal-trip throttling.
  int tripped_node_count() const { return tripped_node_count_; }

 private:
  /// Restore path: adopts `state` wholesale, rebuilding only the derived
  /// schedules (outage lists, grid boundaries, channel handles) from options.
  struct RestoreTag {};
  SimulationEngine(RestoreTag, SystemConfig config,
                   std::unique_ptr<Scheduler> scheduler, EngineOptions options,
                   EngineState state);

  void Initialize();
  /// Resolves the derived transient-thermal configuration (flags, per-class
  /// trip temperatures, per-(rack, class) node counts) shared by the fresh
  /// and restore constructors; validates that an enabled block has a thermal
  /// topology and a CRAC floor below the base supply.
  void SetupTransientThermal();
  /// Builds the sorted outage begin/end schedules from options_.outages.
  void BuildOutageSchedule();
  /// Resolves the hot-loop channel handles into recorder_ (record_history
  /// only) and reserves their full-run capacity.
  void ResolveHistoryChannels();
  void Prepopulate();
  void ApplyOutages();
  /// Consumes grid boundaries (signal steps, DR window edges) that have
  /// arrived; each marks the tick as eventful so grid-reactive schedulers
  /// are re-invoked exactly when the grid changes.
  void ApplyGridEvents();
  /// The wall-power cap in force now: min of the static cap and every
  /// active demand-response window (0 = uncapped).
  double EffectiveCapW() const;
  void ClearCompleted();
  void EnqueueEligible();
  /// Completes wake transitions whose latency has elapsed (wake events are
  /// calendar events, so the fast path stays bit-identical).
  void ApplyWakeEvents();
  /// Invokes Scheduler::PlanPowerStates on event-bearing iterations and
  /// executes the returned actions defensively (stale actions are skipped).
  void CallPowerPlan();
  /// Fills the power-state fields of a SchedulerContext.
  void FillPowerContext(SchedulerContext& ctx);
  void CallSchedule();
  /// Step (4) for `n` consecutive event-free ticks in one batched
  /// integration (n == 1 is the classic tick).  The caller guarantees the
  /// running set and every running job's sampled power are constant across
  /// the span, so one power/throttle computation covers all n ticks and the
  /// replayed history is bit-identical to n single ticks.  Returns the
  /// number of ticks actually advanced: when thermal trips are configured,
  /// the span is truncated at the first tick whose transient temperatures
  /// would flip a (rack, class) trip flag (TransientSpanBound), so trip and
  /// clear edges land on real step boundaries in both stepping modes.
  SimDuration AdvanceTicks(SimDuration n);
  /// How many ticks the calendar may hop before the next interesting time:
  /// submit, completion, outage edge, trace-sample boundary, or sim_end.
  SimDuration SpanTicks();
  /// Earliest current end among running jobs via the completion heap,
  /// lazily discarding completed entries and re-keying throttle-dilated
  /// ones.  Returns SimTime max when nothing runs.
  SimTime NextCompletionTime();
  /// Ticks until Sample() of any power-relevant trace of `job` can change.
  SimDuration TicksUntilTraceChange(const Job& job, SimDuration elapsed) const;
  void StartJob(JobQueue::Handle h, const Placement& placement);
  void CompleteJob(JobQueue::Handle h);
  SimDuration RealizedRuntime(const Job& job) const;

  SystemConfig config_;
  std::vector<Job> jobs_;
  std::unique_ptr<Scheduler> scheduler_;
  EngineOptions options_;

  ResourceManager rm_;
  SystemPowerModel power_model_;
  std::unique_ptr<CoolingModel> cooling_;
  /// Per-CDU cooling loops, used instead of the lumped cooling_ when the
  /// system declares a thermal topology: the placement-dependent heat split
  /// is exactly what the multi-CDU model exists to observe.
  std::unique_ptr<MultiCduCoolingModel> multi_cooling_;
  std::unique_ptr<HeatRecirculationMatrix> hr_matrix_;
  JobQueue queue_;
  SimulationStats stats_;
  TimeSeriesRecorder recorder_;
  AccountRegistry accounts_;
  EngineCounters counters_;

  SimTime now_ = 0;
  SimDuration tick_ = 0;
  bool initialized_ = false;
  bool events_this_tick_ = true;  // force a first scheduling pass

  std::vector<JobQueue::Handle> submit_order_;  ///< pending jobs by submit time
  std::size_t next_submit_ = 0;
  std::vector<std::pair<SimTime, std::vector<int>>> outage_begins_;
  std::vector<std::pair<SimTime, std::vector<int>>> outage_ends_;
  std::size_t next_outage_begin_ = 0;
  std::size_t next_outage_end_ = 0;
  std::vector<JobQueue::Handle> running_;
  std::vector<double> job_energy_j_;

  /// Grid accounting state: which integrations are active, the running
  /// totals, and the sorted in-window boundary schedule with its cursor
  /// (analogous to the outage cursors).
  bool grid_cost_on_ = false;
  bool grid_co2_on_ = false;
  double grid_cost_usd_ = 0.0;
  double grid_co2_kg_ = 0.0;
  std::vector<SimTime> grid_events_;
  std::size_t next_grid_event_ = 0;

  /// Min-heap of (candidate end, handle) — the event calendar's completion
  /// track, kept as a plain vector managed with std::push_heap/pop_heap
  /// (exactly what std::priority_queue does underneath) so CaptureState can
  /// copy the heap array verbatim and a restored engine pops in the same
  /// order, ties included.  Keys go stale when power-cap throttling dilates
  /// running jobs (ends only ever move later), so NextCompletionTime re-keys
  /// lazily on pop instead of rebuilding the heap on every cap-boundary
  /// crossing.
  std::vector<std::pair<SimTime, JobQueue::Handle>> completions_;
  void PushCompletion(SimTime end, JobQueue::Handle h);
  void PopCompletion();

  /// Per-tick wall kWh since sim_start (capture_grid_basis only): the exact
  /// doubles the incremental cost/CO2 integration multiplied by the signal
  /// values, so ReplayGridAccounting reproduces it bit for bit.
  std::vector<double> tick_wall_kwh_;

  /// Compute() over an empty running set is a pure constant (idle draw of
  /// every node); cached so fully idle ticks skip the power model.  Only
  /// consulted while every node is active at P0, so power states never
  /// stale it.
  std::optional<PowerSample> idle_sample_;
  std::vector<double> idle_class_w_;         ///< per-class draw of the cache
  std::vector<const Job*> running_scratch_;  ///< reused per step, never shrinks
  std::vector<double> job_power_scratch_;    ///< per-job draw from Compute()
  std::vector<double> job_freq_scratch_;     ///< per-job freq scale from Compute()
  std::vector<double> class_w_scratch_;      ///< per-class draw from Compute()

  // --- thermal topology ----------------------------------------------------
  /// Applies the thermal layer to the span's sampled power: fills
  /// node_heat_w_ (busy draw or idle/sleep draw per node), folds it through
  /// the recirculation matrix into inlet_scratch_, and adds the
  /// temperature-dependent fan/leakage overhead to power's IT draw (idle
  /// share, so cap throttling still sheds only job power).  The fully idle
  /// machine's inlets and leak are a pure constant and are cached like
  /// idle_sample_.  No-op unless hr_matrix_ is set.
  void ApplyThermalLayer(PowerSample& power, bool machine_idle);
  std::vector<double> node_busy_w_scratch_;  ///< per-node busy draw from Compute()
  std::vector<double> node_heat_w_;          ///< per-node heat of this span
  std::vector<double> inlet_scratch_;        ///< this span's inlet temps
  std::vector<double> node_inlet_c_;   ///< published inlet temps (last span)
  std::vector<double> class_idle_heat_w_;  ///< idle draw per machine class
  std::vector<double> idle_inlet_c_;   ///< inlet temps of the fully idle machine
  double idle_leak_w_ = -1.0;          ///< leak of the fully idle machine (<0 = unset)
  double thermal_leak_w_ = 0.0;        ///< last span's leak (observer/history)
  double thermal_leak_j_ = 0.0;        ///< running leak energy (stats mirror)
  double peak_inlet_c_ = 0.0;          ///< run-wide hottest inlet (stats mirror)
  std::vector<double> per_cdu_heat_scratch_;  ///< heat split for multi_cooling_

  // --- transient thermal layer (cooling.transient) -------------------------
  /// One shared tick of transient physics — CRAC supply step, then the
  /// backward-Euler RC update of every rack toward its quasi-static target
  /// (rack_mean_c_, shifted by the supply deviation).  Used verbatim by both
  /// the span-bound predictor and the executing loop so their trajectories
  /// are bitwise identical.
  void TransientPhysicsTick(double& supply_c, std::vector<double>& rack_c) const;
  /// First tick k in [1, n] at which executing the span would flip a
  /// (rack, class) trip flag, or n when none flips.  Runs the exact per-tick
  /// recurrence on scratch copies; only consulted when trips are configured.
  SimDuration TransientSpanBound(SimDuration n);
  /// Applies trip/clear hysteresis against the current rack_temp_c_,
  /// updating flags, counters, and tripped_node_count_.  Returns true when
  /// any flag flipped.
  bool ApplyThermalFlips();
  /// The runtime-dilation factor thermal trips impose on `job`: the spec's
  /// trip_throttle when any assigned node sits in a tripped (rack, class),
  /// 1.0 otherwise.
  double JobTripFactor(const Job& job) const;
  bool transient_on_ = false;  ///< cooling.transient.enabled && topology
  bool crac_on_ = false;       ///< CRAC supply loop active
  bool trip_on_ = false;       ///< any resolved trip temperature > 0
  double supply_base_c_ = 0.0; ///< configured supply (CRAC anchor/upper bound)
  std::vector<double> rack_mean_c_;  ///< per-rack mean quasi-static inlet (span)
  std::vector<double> rack_temp_c_;  ///< per-rack transient inlet (RC state)
  double crac_supply_c_ = 0.0;       ///< CRAC-controlled supply (state)
  std::vector<std::uint8_t> rack_class_tripped_;  ///< racks × classes flags
  std::vector<double> class_trip_c_;  ///< resolved trip temp per class (0 = never)
  std::vector<int> rack_class_nodes_; ///< node count per (rack, class)
  int tripped_node_count_ = 0;        ///< derived from rack_class_tripped_
  /// A trip/clear edge fired during the last span; converted into
  /// events_this_tick_ at the top of the next step (like power_event_pending_).
  bool thermal_event_pending_ = false;
  std::vector<double> pred_rack_c_;   ///< TransientSpanBound scratch

  // --- per-node power state ------------------------------------------------
  std::vector<std::uint8_t> node_pstate_;  ///< ladder rung per global node
  std::vector<NodePowerMode> node_mode_;   ///< active / C / S / waking
  /// Min-heap of (wake time, node), managed like completions_ so CaptureState
  /// copies the array verbatim and forks pop in the same order.
  std::vector<std::pair<SimTime, int>> wake_events_;
  std::vector<int> class_c_idle_;   ///< nodes in C per class (excl. waking)
  std::vector<int> class_s_sleep_;  ///< nodes in S per class (excl. waking)
  std::vector<double> class_energy_j_;  ///< per-class IT energy (J)
  int nonzero_pstate_nodes_ = 0;    ///< nodes clocked below P0
  int waking_nodes_ = 0;            ///< wake transitions in flight
  double last_wall_power_w_ = 0.0;  ///< previous tick's wall draw
  double last_busy_power_w_ = 0.0;  ///< previous tick's busy share
  /// Set when a power action is applied; makes the *next* iteration
  /// eventful so iterative policies (pace_to_cap's rung walk) re-plan, and
  /// bounds the calendar span to one tick.  Cleared at the top of StepOnce.
  bool power_event_pending_ = false;
  /// Demand watch (SetPowerWatch): threshold (0 = disarmed) and the step
  /// start at which pre-cap demand first exceeded it.
  double power_watch_threshold_w_ = 0.0;
  SimTime power_watch_tripped_at_ = std::numeric_limits<SimTime>::max();
  /// RunUntilExact's span limit: SpanTicks never hops past it.  SimTime max
  /// outside RunUntilExact.
  SimTime span_limit_ = std::numeric_limits<SimTime>::max();
  /// Accumulate the per-class energy breakdown (power-state schedulers
  /// only; keeps span batching O(1) for everything else).
  bool class_energy_on_ = false;

  /// Hot-loop channel handles, resolved once at Initialize when
  /// record_history is on (cooling/throttle members only with their
  /// features); Channel references are stable across map growth.
  struct HistoryChannels {
    Channel* it_power = nullptr;
    Channel* loss = nullptr;
    Channel* power = nullptr;
    Channel* utilization = nullptr;
    Channel* queue_len = nullptr;
    Channel* running = nullptr;
    Channel* throttle = nullptr;
    Channel* price = nullptr;
    Channel* carbon = nullptr;
    Channel* pue = nullptr;
    Channel* tower = nullptr;
    Channel* supply = nullptr;
    Channel* cooling_kw = nullptr;
    Channel* nodes_asleep = nullptr;
    Channel* avg_freq = nullptr;
    Channel* max_inlet = nullptr;     ///< hottest node inlet (thermal only)
    Channel* thermal_leak = nullptr;  ///< fan/leakage overhead kW (thermal only)
    Channel* cdu_spread = nullptr;    ///< hottest - coldest CDU (multi-CDU only)
    std::vector<Channel*> rack_inlet;  ///< mean inlet per rack (thermal only)
    Channel* crac_supply = nullptr;    ///< CRAC supply setpoint (transient only)
    Channel* tripped_nodes = nullptr;  ///< throttled nodes (transient trips only)
    std::vector<Channel*> rack_transient;  ///< RC inlet per rack (transient only)
  } hist_;
};

}  // namespace sraps
