#include "telemetry/trace_series.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/mathutil.h"

namespace sraps {

TraceSeries::TraceSeries(std::vector<SimDuration> offsets, std::vector<double> values,
                         TraceFlags flags)
    : offsets_(std::move(offsets)), values_(std::move(values)), flags_(flags) {
  if (offsets_.size() != values_.size()) {
    throw std::invalid_argument("TraceSeries: offsets/values size mismatch");
  }
  for (std::size_t i = 0; i < offsets_.size(); ++i) {
    if (offsets_[i] < 0) throw std::invalid_argument("TraceSeries: negative offset");
    if (i > 0 && offsets_[i] <= offsets_[i - 1]) {
      throw std::invalid_argument("TraceSeries: offsets must be strictly increasing");
    }
  }
}

TraceSeries TraceSeries::Constant(double value) {
  TraceSeries t;
  t.offsets_ = {0};
  t.values_ = {value};
  t.constant_ = true;
  return t;
}

double TraceSeries::Sample(SimDuration offset_from_start) const {
  if (empty()) throw std::logic_error("TraceSeries: sampling an empty trace");
  if (constant_ || offset_from_start <= offsets_.front()) return values_.front();
  // Last sample with offset <= query (step hold / last-known-value).
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), offset_from_start);
  const std::size_t idx = static_cast<std::size_t>(it - offsets_.begin()) - 1;
  return values_[idx];
}

SimDuration TraceSeries::NextOffsetAfter(SimDuration offset) const {
  if (constant_ || size() <= 1) return -1;
  // Sample() holds values_[i] over [offsets_[i], offsets_[i+1]) and head-fills
  // before offsets_[0], so the value can only change at offsets_[i] for i >= 1.
  const auto it = std::upper_bound(offsets_.begin() + 1, offsets_.end(), offset);
  if (it == offsets_.end()) return -1;
  return *it;
}

double TraceSeries::MeanOver(SimDuration horizon) const {
  if (empty()) throw std::logic_error("TraceSeries: empty trace");
  if (constant_ || size() == 1) return values_.front();
  if (horizon <= 0) return values_.front();
  double weighted = 0.0;
  SimDuration covered = 0;
  // Head: value[0] holds from 0 to offsets[0] (head fill).
  const SimDuration head = std::min<SimDuration>(offsets_.front(), horizon);
  weighted += static_cast<double>(head) * values_.front();
  covered += head;
  for (std::size_t i = 0; i + 1 < size() && covered < horizon; ++i) {
    const SimDuration seg_start = std::max<SimDuration>(offsets_[i], 0);
    const SimDuration seg_end = std::min<SimDuration>(offsets_[i + 1], horizon);
    if (seg_end > seg_start) {
      weighted += static_cast<double>(seg_end - seg_start) * values_[i];
      covered += seg_end - seg_start;
    }
  }
  // Tail: last value holds to the horizon.
  if (covered < horizon) {
    weighted += static_cast<double>(horizon - covered) * values_.back();
    covered = horizon;
  }
  return weighted / static_cast<double>(horizon);
}

double TraceSeries::RawMean() const {
  if (empty()) throw std::logic_error("TraceSeries: empty trace");
  return Mean(values_);
}

double TraceSeries::RawMin() const {
  if (empty()) throw std::logic_error("TraceSeries: empty trace");
  return *std::min_element(values_.begin(), values_.end());
}

double TraceSeries::RawMax() const {
  if (empty()) throw std::logic_error("TraceSeries: empty trace");
  return *std::max_element(values_.begin(), values_.end());
}

double TraceSeries::RawStdDev() const {
  if (empty()) throw std::logic_error("TraceSeries: empty trace");
  return StdDev(values_);
}

}  // namespace sraps
