// Per-job telemetry traces with the resampling semantics of §3.2.2:
// when a rescheduled job is sampled at an offset where no recorded sample
// exists, the last known value is used; jobs whose recordings are truncated
// at the head or tail of the capture window are flagged because no ground
// truth exists there (Fig. 3 edge cases).
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.h"

namespace sraps {

/// Flags carried with each trace describing capture-window truncation.
struct TraceFlags {
  bool truncated_head = false;  ///< job started before telemetry capture began
  bool truncated_tail = false;  ///< job ended after telemetry capture ended
};

/// A sequence of (offset-from-job-start, value) samples.  Offsets are
/// non-negative, strictly increasing.  Values are unitless here (utilisation
/// fraction, watts, ... — the consumer decides).
class TraceSeries {
 public:
  TraceSeries() = default;

  /// Constructs from parallel vectors.  Throws std::invalid_argument if the
  /// sizes differ or offsets are not strictly increasing / negative.
  TraceSeries(std::vector<SimDuration> offsets, std::vector<double> values,
              TraceFlags flags = {});

  /// A constant-valued trace (the scalar-summary datasets: Fugaku, Lassen,
  /// Adastra provide only average values).
  static TraceSeries Constant(double value);

  bool empty() const { return values_.empty(); }
  std::size_t size() const { return values_.size(); }
  bool is_constant() const { return constant_; }
  const TraceFlags& flags() const { return flags_; }

  /// Samples the trace at the given offset from job start.
  ///  - before the first sample: first value (head fill)
  ///  - between samples: the last sample at or before the offset (step hold)
  ///  - after the last sample: last value (§3.2.2 "last known value")
  /// Throws std::logic_error on an empty trace.
  double Sample(SimDuration offset_from_start) const;

  /// Smallest sample offset strictly greater than `offset` at which Sample's
  /// step-hold value can next change, or -1 when the trace is flat from
  /// `offset` onwards (constant traces, single-sample traces, offsets past
  /// the last sample).  The engine's event calendar uses this to bound the
  /// span over which a running job's power is provably constant.
  SimDuration NextOffsetAfter(SimDuration offset) const;

  /// Mean of the recorded samples, duration-weighted using the step-hold
  /// interpretation over [0, horizon].  For constant traces returns the value.
  double MeanOver(SimDuration horizon) const;

  /// Simple min / max / arithmetic-mean / stddev of raw samples
  /// (the ML pipeline's summary-statistics extraction of §4.4.3).
  double RawMean() const;
  double RawMin() const;
  double RawMax() const;
  double RawStdDev() const;

  const std::vector<SimDuration>& offsets() const { return offsets_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<SimDuration> offsets_;
  std::vector<double> values_;
  TraceFlags flags_;
  bool constant_ = false;
};

}  // namespace sraps
