#include "telemetry/recorder.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/mathutil.h"

namespace sraps {
namespace {

std::string FormatValue(double v) {
  std::ostringstream ss;
  ss.precision(10);
  ss << v;
  return ss.str();
}

}  // namespace

void TimeSeriesRecorder::Record(const std::string& channel, SimTime t, double value) {
  auto& ch = channels_[channel];
  if (!ch.times.empty() && t < ch.times.back()) {
    throw std::invalid_argument("Recorder: time went backwards in channel " + channel);
  }
  ch.Append(t, value);
}

void TimeSeriesRecorder::RecordSpan(const std::string& channel, SimTime t0,
                                    SimDuration dt, std::size_t n, double value) {
  if (n == 0) return;
  if (dt <= 0) throw std::invalid_argument("Recorder: RecordSpan needs dt > 0");
  auto& ch = channels_[channel];
  if (!ch.times.empty() && t0 < ch.times.back()) {
    throw std::invalid_argument("Recorder: time went backwards in channel " + channel);
  }
  ch.AppendSpan(t0, dt, n, value);
}

bool TimeSeriesRecorder::Has(const std::string& channel) const {
  return channels_.count(channel) != 0;
}

const Channel& TimeSeriesRecorder::Get(const std::string& channel) const {
  auto it = channels_.find(channel);
  if (it == channels_.end()) {
    throw std::out_of_range("Recorder: no channel '" + channel + "'");
  }
  return it->second;
}

std::vector<std::string> TimeSeriesRecorder::ChannelNames() const {
  std::vector<std::string> names;
  names.reserve(channels_.size());
  for (const auto& [name, ch] : channels_) names.push_back(name);
  return names;
}

double TimeSeriesRecorder::MeanOf(const std::string& channel) const {
  const auto& ch = Get(channel);
  if (ch.values.empty()) throw std::logic_error("Recorder: empty channel " + channel);
  return Mean(ch.values);
}

double TimeSeriesRecorder::MaxOf(const std::string& channel) const {
  const auto& ch = Get(channel);
  if (ch.values.empty()) throw std::logic_error("Recorder: empty channel " + channel);
  return *std::max_element(ch.values.begin(), ch.values.end());
}

double TimeSeriesRecorder::MinOf(const std::string& channel) const {
  const auto& ch = Get(channel);
  if (ch.values.empty()) throw std::logic_error("Recorder: empty channel " + channel);
  return *std::min_element(ch.values.begin(), ch.values.end());
}

double TimeSeriesRecorder::IntegralOf(const std::string& channel) const {
  const auto& ch = Get(channel);
  if (ch.values.size() < 2) {
    throw std::logic_error("Recorder: need >=2 samples " + channel);
  }
  double acc = 0.0;
  for (std::size_t i = 1; i < ch.values.size(); ++i) {
    const double dt = static_cast<double>(ch.times[i] - ch.times[i - 1]);
    acc += 0.5 * (ch.values[i] + ch.values[i - 1]) * dt;
  }
  return acc;
}

CsvTable TimeSeriesRecorder::ToCsv() const {
  std::set<SimTime> all_times;
  for (const auto& [name, ch] : channels_) {
    all_times.insert(ch.times.begin(), ch.times.end());
  }
  std::vector<std::string> header = {"time"};
  for (const auto& [name, ch] : channels_) header.push_back(name);

  // Per-channel cursor advance (times are sorted).
  std::map<std::string, std::size_t> cursor;
  std::vector<std::vector<std::string>> rows;
  rows.reserve(all_times.size());
  for (SimTime t : all_times) {
    std::vector<std::string> row;
    row.reserve(header.size());
    row.push_back(std::to_string(t));
    for (const auto& [name, ch] : channels_) {
      std::size_t& c = cursor[name];
      // Advance the cursor to the sample at time t, if there is one.
      while (c < ch.times.size() && ch.times[c] < t) ++c;
      if (c < ch.times.size() && ch.times[c] == t) {
        row.push_back(FormatValue(ch.values[c]));
      } else {
        row.push_back("");
      }
    }
    rows.push_back(std::move(row));
  }
  return CsvTable(std::move(header), std::move(rows));
}

void TimeSeriesRecorder::Save(const std::string& path) const {
  const CsvTable table = ToCsv();
  CsvWriter w(table.header());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> row;
    row.reserve(table.num_cols());
    for (std::size_t c = 0; c < table.num_cols(); ++c) row.push_back(table.Cell(r, c));
    w.AddRow(std::move(row));
  }
  w.Save(path);
}

}  // namespace sraps
