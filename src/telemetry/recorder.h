// Output time-series recording: the C++ analogue of the artifact's
// power_history.parquet / util.parquet / cooling_model.parquet outputs.
// Every engine tick appends one sample per registered channel; the recorder
// can dump everything as CSV for the plotting stage of each figure.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/time.h"

namespace sraps {

/// A single named output channel, e.g. "power_kw" or "utilization".
struct Channel {
  std::vector<SimTime> times;
  std::vector<double> values;

  /// Unchecked appends for hot-loop writers that maintain time monotonicity
  /// themselves (the engine); Record/RecordSpan are the checked front door.
  void Append(SimTime t, double value) {
    times.push_back(t);
    values.push_back(value);
  }
  void AppendSpan(SimTime t0, SimDuration dt, std::size_t n, double value) {
    // No reserve: exact-capacity growth before every append would defeat
    // push_back's geometric growth and turn a span-per-tick caller quadratic.
    for (std::size_t i = 0; i < n; ++i) {
      times.push_back(t0 + static_cast<SimDuration>(i) * dt);
    }
    values.insert(values.end(), n, value);
  }
};

class TimeSeriesRecorder {
 public:
  /// Appends a sample to a channel (creating it on first use).
  void Record(const std::string& channel, SimTime t, double value);

  /// Appends `n` samples of the same value at times t0, t0+dt, ...,
  /// t0+(n-1)*dt.  Equivalent to n Record() calls (and throws like Record if
  /// t0 precedes the channel's tail); this is the checked public counterpart
  /// of Channel::AppendSpan, which the engine's batched replay drives
  /// directly through Mutable() handles.
  void RecordSpan(const std::string& channel, SimTime t0, SimDuration dt,
                  std::size_t n, double value);

  /// Stable handle to a channel's storage, creating it on first use.  Map
  /// nodes never move, so the reference outlives later insertions; hot loops
  /// resolve once and Append directly instead of paying a lookup per tick.
  Channel& Mutable(const std::string& channel) { return channels_[channel]; }

  bool Has(const std::string& channel) const;
  const Channel& Get(const std::string& channel) const;
  std::vector<std::string> ChannelNames() const;

  /// Mean of a channel's samples; throws if absent/empty.
  double MeanOf(const std::string& channel) const;
  /// Max of a channel's samples; throws if absent/empty.
  double MaxOf(const std::string& channel) const;
  /// Min of a channel's samples; throws if absent/empty.
  double MinOf(const std::string& channel) const;

  /// Trapezoidal time-integral of the channel (e.g. kW -> kJ if values are kW
  /// and times are seconds).  Throws if absent or fewer than 2 samples.
  double IntegralOf(const std::string& channel) const;

  /// All channels joined on time into one wide CSV.  Channels missing a
  /// sample at some time get an empty cell.
  CsvTable ToCsv() const;

  /// Writes ToCsv() to a file.
  void Save(const std::string& path) const;

 private:
  std::map<std::string, Channel> channels_;
};

}  // namespace sraps
