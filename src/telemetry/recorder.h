// Output time-series recording: the C++ analogue of the artifact's
// power_history.parquet / util.parquet / cooling_model.parquet outputs.
// Every engine tick appends one sample per registered channel; the recorder
// can dump everything as CSV for the plotting stage of each figure.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/time.h"

namespace sraps {

/// A single named output channel, e.g. "power_kw" or "utilization".
struct Channel {
  std::vector<SimTime> times;
  std::vector<double> values;
};

class TimeSeriesRecorder {
 public:
  /// Appends a sample to a channel (creating it on first use).
  void Record(const std::string& channel, SimTime t, double value);

  bool Has(const std::string& channel) const;
  const Channel& Get(const std::string& channel) const;
  std::vector<std::string> ChannelNames() const;

  /// Mean of a channel's samples; throws if absent/empty.
  double MeanOf(const std::string& channel) const;
  /// Max of a channel's samples; throws if absent/empty.
  double MaxOf(const std::string& channel) const;
  /// Min of a channel's samples; throws if absent/empty.
  double MinOf(const std::string& channel) const;

  /// Trapezoidal time-integral of the channel (e.g. kW -> kJ if values are kW
  /// and times are seconds).  Throws if absent or fewer than 2 samples.
  double IntegralOf(const std::string& channel) const;

  /// All channels joined on time into one wide CSV.  Channels missing a
  /// sample at some time get an empty cell.
  CsvTable ToCsv() const;

  /// Writes ToCsv() to a file.
  void Save(const std::string& path) const;

 private:
  std::map<std::string, Channel> channels_;
};

}  // namespace sraps
