#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <stdexcept>

namespace sraps {
namespace {

// Gini impurity of a label histogram.
double Gini(const std::map<int, int>& counts, int total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (const auto& [label, n] : counts) {
    const double p = static_cast<double>(n) / total;
    g -= p * p;
  }
  return g;
}

}  // namespace

DecisionTree::DecisionTree(Task task, TreeOptions options)
    : task_(task), options_(options) {
  if (options_.max_depth <= 0) {
    throw std::invalid_argument("DecisionTree: max_depth <= 0");
  }
  if (options_.min_samples_leaf <= 0) {
    throw std::invalid_argument("DecisionTree: min_samples_leaf <= 0");
  }
}

double DecisionTree::LeafValue(const std::vector<double>& y,
                               const std::vector<std::size_t>& idx, std::size_t lo,
                               std::size_t hi) const {
  if (task_ == Task::kRegression) {
    double s = 0.0;
    for (std::size_t i = lo; i < hi; ++i) s += y[idx[i]];
    return s / static_cast<double>(hi - lo);
  }
  // Classification: majority vote.
  std::map<int, int> counts;
  for (std::size_t i = lo; i < hi; ++i) ++counts[static_cast<int>(y[idx[i]])];
  int best_label = 0, best_count = -1;
  for (const auto& [label, n] : counts) {
    if (n > best_count) {
      best_count = n;
      best_label = label;
    }
  }
  return best_label;
}

double DecisionTree::Impurity(const std::vector<double>& y,
                              const std::vector<std::size_t>& idx, std::size_t lo,
                              std::size_t hi) const {
  const int n = static_cast<int>(hi - lo);
  if (n == 0) return 0.0;
  if (task_ == Task::kRegression) {
    double s = 0.0, s2 = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      s += y[idx[i]];
      s2 += y[idx[i]] * y[idx[i]];
    }
    const double mean = s / n;
    return std::max(0.0, s2 / n - mean * mean);  // variance
  }
  std::map<int, int> counts;
  for (std::size_t i = lo; i < hi; ++i) ++counts[static_cast<int>(y[idx[i]])];
  return Gini(counts, n);
}

int DecisionTree::Build(const std::vector<std::vector<double>>& x,
                        const std::vector<double>& y, std::vector<std::size_t>& idx,
                        std::size_t lo, std::size_t hi, int depth, Rng& rng) {
  depth_ = std::max(depth_, depth);
  const int n = static_cast<int>(hi - lo);
  const double node_impurity = Impurity(y, idx, lo, hi);

  auto make_leaf = [&] {
    Node leaf;
    leaf.value = LeafValue(y, idx, lo, hi);
    nodes_.push_back(leaf);
    return static_cast<int>(nodes_.size()) - 1;
  };

  if (depth >= options_.max_depth || n < options_.min_samples_split ||
      node_impurity <= 1e-12) {
    return make_leaf();
  }

  const int num_features = static_cast<int>(x.front().size());
  std::vector<int> features(num_features);
  std::iota(features.begin(), features.end(), 0);
  if (options_.max_features > 0 && options_.max_features < num_features) {
    // Random subset (Fisher–Yates prefix).
    for (int i = 0; i < options_.max_features; ++i) {
      const int j = static_cast<int>(rng.UniformInt(i, num_features - 1));
      std::swap(features[i], features[j]);
    }
    features.resize(options_.max_features);
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = -1e-12;  // require strictly positive impurity decrease

  std::vector<std::size_t> sorted(idx.begin() + lo, idx.begin() + hi);
  for (int f : features) {
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) { return x[a][f] < x[b][f]; });
    if (task_ == Task::kRegression) {
      // Incremental variance split scan.
      double left_s = 0.0, left_s2 = 0.0;
      double right_s = 0.0, right_s2 = 0.0;
      for (std::size_t i = 0; i < sorted.size(); ++i) {
        right_s += y[sorted[i]];
        right_s2 += y[sorted[i]] * y[sorted[i]];
      }
      for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
        const double v = y[sorted[i]];
        left_s += v;
        left_s2 += v * v;
        right_s -= v;
        right_s2 -= v * v;
        if (x[sorted[i]][f] == x[sorted[i + 1]][f]) continue;  // no split between ties
        const int nl = static_cast<int>(i) + 1;
        const int nr = static_cast<int>(sorted.size()) - nl;
        if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf) continue;
        const double var_l = std::max(0.0, left_s2 / nl - (left_s / nl) * (left_s / nl));
        const double var_r =
            std::max(0.0, right_s2 / nr - (right_s / nr) * (right_s / nr));
        const double score =
            node_impurity - (nl * var_l + nr * var_r) / static_cast<double>(n);
        if (score > best_score) {
          best_score = score;
          best_feature = f;
          best_threshold = 0.5 * (x[sorted[i]][f] + x[sorted[i + 1]][f]);
        }
      }
    } else {
      std::map<int, int> left_counts, right_counts;
      for (std::size_t i = 0; i < sorted.size(); ++i) {
        ++right_counts[static_cast<int>(y[sorted[i]])];
      }
      for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
        const int label = static_cast<int>(y[sorted[i]]);
        ++left_counts[label];
        if (--right_counts[label] == 0) right_counts.erase(label);
        if (x[sorted[i]][f] == x[sorted[i + 1]][f]) continue;
        const int nl = static_cast<int>(i) + 1;
        const int nr = static_cast<int>(sorted.size()) - nl;
        if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf) continue;
        const double score = node_impurity - (nl * Gini(left_counts, nl) +
                                              nr * Gini(right_counts, nr)) /
                                                 static_cast<double>(n);
        if (score > best_score) {
          best_score = score;
          best_feature = f;
          best_threshold = 0.5 * (x[sorted[i]][f] + x[sorted[i + 1]][f]);
        }
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Partition idx[lo,hi) by the chosen split.
  const auto mid_it =
      std::stable_partition(idx.begin() + lo, idx.begin() + hi, [&](std::size_t i) {
        return x[i][best_feature] <= best_threshold;
      });
  const std::size_t mid = static_cast<std::size_t>(mid_it - idx.begin());
  if (mid == lo || mid == hi) return make_leaf();  // degenerate split

  Node node;
  node.feature = best_feature;
  node.threshold = best_threshold;
  nodes_.push_back(node);
  const int me = static_cast<int>(nodes_.size()) - 1;
  const int left = Build(x, y, idx, lo, mid, depth + 1, rng);
  const int right = Build(x, y, idx, mid, hi, depth + 1, rng);
  nodes_[me].left = left;
  nodes_[me].right = right;
  return me;
}

void DecisionTree::Fit(const std::vector<std::vector<double>>& x,
                       const std::vector<double>& y, Rng& rng,
                       const std::vector<std::size_t>& row_indices) {
  if (x.empty() || x.size() != y.size()) {
    throw std::invalid_argument("DecisionTree: bad training data");
  }
  nodes_.clear();
  depth_ = 0;
  std::vector<std::size_t> idx;
  if (row_indices.empty()) {
    idx.resize(x.size());
    std::iota(idx.begin(), idx.end(), 0);
  } else {
    idx = row_indices;
  }
  root_ = Build(x, y, idx, 0, idx.size(), 0, rng);
}

double DecisionTree::Predict(const std::vector<double>& row) const {
  if (nodes_.empty() || root_ < 0) throw std::logic_error("DecisionTree: not fitted");
  int cur = root_;
  while (nodes_[cur].feature >= 0) {
    cur = row[nodes_[cur].feature] <= nodes_[cur].threshold ? nodes_[cur].left
                                                            : nodes_[cur].right;
  }
  return nodes_[cur].value;
}

}  // namespace sraps
