#include "ml/fingerprint.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ml/features.h"

namespace sraps {
namespace {

// Summary of the first `prefix` seconds of a trace (step-hold sampling at
// 1/10th of the prefix).  Empty traces contribute zeros.
void AppendPrefixSummary(std::vector<double>& out, const TraceSeries& trace,
                         SimDuration prefix) {
  if (trace.empty()) {
    out.insert(out.end(), {0.0, 0.0, 0.0, 0.0});
    return;
  }
  const SimDuration step = std::max<SimDuration>(1, prefix / 10);
  double sum = 0.0, sum2 = 0.0;
  double lo = 1e300, hi = -1e300;
  int n = 0;
  for (SimDuration t = 0; t < prefix; t += step) {
    const double v = trace.Sample(t);
    sum += v;
    sum2 += v * v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    ++n;
  }
  const double mean = sum / n;
  const double var = std::max(0.0, sum2 / n - mean * mean);
  out.insert(out.end(), {mean, lo, hi, std::sqrt(var)});
}

}  // namespace

std::vector<double> JobFingerprinter::PrefixFeatures(const Job& job,
                                                     SimDuration prefix) {
  std::vector<double> f = StaticFeatures(job);
  // Prefer the power trace; utilisation prefixes carry the same shape
  // information for datasets without power telemetry.
  AppendPrefixSummary(f, job.node_power_w, prefix);
  AppendPrefixSummary(f, job.cpu_util, prefix);
  AppendPrefixSummary(f, job.gpu_util, prefix);
  return f;
}

JobFingerprinter::JobFingerprinter(FingerprinterOptions options)
    : options_(options), kmeans_(options.num_clusters, 100, options.seed) {}

void JobFingerprinter::Train(const std::vector<Job>& history) {
  if (static_cast<int>(history.size()) < options_.num_clusters) {
    throw std::invalid_argument("JobFingerprinter: fewer jobs than clusters");
  }
  std::vector<std::vector<double>> rows;
  rows.reserve(history.size());
  for (const Job& j : history) rows.push_back(PrefixFeatures(j, options_.prefix));
  scaler_.Fit(rows);
  const auto scaled = scaler_.TransformAll(rows);
  const KMeansResult result = kmeans_.Fit(scaled);

  cluster_runtime_s_.assign(options_.num_clusters, 0.0);
  cluster_power_w_.assign(options_.num_clusters, 0.0);
  std::vector<int> counts(options_.num_clusters, 0);
  for (std::size_t i = 0; i < history.size(); ++i) {
    const int c = result.labels[i];
    const Job& j = history[i];
    const SimDuration runtime = j.RecordedRuntime();
    cluster_runtime_s_[c] += static_cast<double>(runtime);
    cluster_power_w_[c] +=
        j.node_power_w.empty() ? 0.0 : j.node_power_w.MeanOver(runtime);
    ++counts[c];
  }
  double global_runtime = 0.0, global_power = 0.0;
  for (int c = 0; c < options_.num_clusters; ++c) {
    global_runtime += cluster_runtime_s_[c];
    global_power += cluster_power_w_[c];
  }
  global_runtime /= static_cast<double>(history.size());
  global_power /= static_cast<double>(history.size());
  for (int c = 0; c < options_.num_clusters; ++c) {
    if (counts[c] > 0) {
      cluster_runtime_s_[c] /= counts[c];
      cluster_power_w_[c] /= counts[c];
    } else {
      cluster_runtime_s_[c] = global_runtime;  // empty cluster: global prior
      cluster_power_w_[c] = global_power;
    }
  }
  trained_ = true;
}

FingerprintForecast JobFingerprinter::Predict(const Job& job,
                                              SimDuration observed_s) const {
  if (!trained_) throw std::logic_error("JobFingerprinter: not trained");
  const auto x = scaler_.Transform(PrefixFeatures(job, options_.prefix));
  FingerprintForecast f;
  f.cluster = kmeans_.Predict(x);
  f.total_runtime_s = cluster_runtime_s_[f.cluster];
  f.remaining_runtime_s =
      std::max(0.0, f.total_runtime_s - static_cast<double>(observed_s));
  f.mean_power_w = cluster_power_w_[f.cluster];
  const double d2 = SquaredDistance(x, kmeans_.centroids()[f.cluster]);
  f.confidence = 1.0 / (1.0 + std::sqrt(d2));
  return f;
}

}  // namespace sraps
