#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sraps {
namespace {

std::vector<std::size_t> Bootstrap(std::size_t n, double fraction, Rng& rng) {
  const std::size_t m = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(fraction * static_cast<double>(n))));
  std::vector<std::size_t> idx(m);
  for (auto& i : idx) {
    i = static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(n) - 1));
  }
  return idx;
}

int DefaultMaxFeatures(std::size_t num_features, bool classification) {
  const double f = static_cast<double>(num_features);
  const double m = classification ? std::sqrt(f) : f / 3.0;
  return std::max(1, static_cast<int>(std::llround(m)));
}

}  // namespace

RandomForestClassifier::RandomForestClassifier(ForestOptions options)
    : options_(options) {
  if (options_.num_trees <= 0) throw std::invalid_argument("forest: num_trees <= 0");
}

void RandomForestClassifier::Fit(const std::vector<std::vector<double>>& x,
                                 const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) {
    throw std::invalid_argument("RandomForestClassifier: bad training data");
  }
  num_classes_ = 0;
  for (double label : y) {
    if (label < 0 || label != std::floor(label)) {
      throw std::invalid_argument("RandomForestClassifier: labels must be ints >= 0");
    }
    num_classes_ = std::max(num_classes_, static_cast<int>(label) + 1);
  }
  TreeOptions topts = options_.tree;
  if (topts.max_features == 0) {
    topts.max_features = DefaultMaxFeatures(x.front().size(), /*classification=*/true);
  }
  Rng rng(options_.seed);
  trees_.clear();
  trees_.reserve(options_.num_trees);
  for (int t = 0; t < options_.num_trees; ++t) {
    DecisionTree tree(DecisionTree::Task::kClassification, topts);
    const auto idx = Bootstrap(x.size(), options_.bootstrap_fraction, rng);
    tree.Fit(x, y, rng, idx);
    trees_.push_back(std::move(tree));
  }
}

std::vector<double> RandomForestClassifier::PredictProba(
    const std::vector<double>& row) const {
  if (trees_.empty()) throw std::logic_error("RandomForestClassifier: not fitted");
  std::vector<double> votes(num_classes_, 0.0);
  for (const auto& tree : trees_) {
    const int label = static_cast<int>(tree.Predict(row));
    if (label >= 0 && label < num_classes_) votes[label] += 1.0;
  }
  for (auto& v : votes) v /= static_cast<double>(trees_.size());
  return votes;
}

int RandomForestClassifier::Predict(const std::vector<double>& row) const {
  const auto proba = PredictProba(row);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) - proba.begin());
}

double RandomForestClassifier::Score(const std::vector<std::vector<double>>& x,
                                     const std::vector<double>& y) const {
  if (x.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (Predict(x[i]) == static_cast<int>(y[i])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(x.size());
}

RandomForestRegressor::RandomForestRegressor(ForestOptions options) : options_(options) {
  if (options_.num_trees <= 0) throw std::invalid_argument("forest: num_trees <= 0");
}

void RandomForestRegressor::Fit(const std::vector<std::vector<double>>& x,
                                const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) {
    throw std::invalid_argument("RandomForestRegressor: bad training data");
  }
  TreeOptions topts = options_.tree;
  if (topts.max_features == 0) {
    topts.max_features = DefaultMaxFeatures(x.front().size(), /*classification=*/false);
  }
  Rng rng(options_.seed);
  trees_.clear();
  trees_.reserve(options_.num_trees);
  for (int t = 0; t < options_.num_trees; ++t) {
    DecisionTree tree(DecisionTree::Task::kRegression, topts);
    const auto idx = Bootstrap(x.size(), options_.bootstrap_fraction, rng);
    tree.Fit(x, y, rng, idx);
    trees_.push_back(std::move(tree));
  }
}

double RandomForestRegressor::Predict(const std::vector<double>& row) const {
  if (trees_.empty()) throw std::logic_error("RandomForestRegressor: not fitted");
  double s = 0.0;
  for (const auto& tree : trees_) s += tree.Predict(row);
  return s / static_cast<double>(trees_.size());
}

double RandomForestRegressor::Score(const std::vector<std::vector<double>>& x,
                                    const std::vector<double>& y) const {
  if (x.empty()) return 0.0;
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = Predict(x[i]);
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean) * (y[i] - mean);
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace sraps
