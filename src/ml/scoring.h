// The job ranking score of §4.4.2:
//
//     S(X_i) = sum_j alpha_j * exp( sqrt( X_i^j + 1 ) )^{-1}
//
// The inverse exponential compresses large feature values while preserving
// fine-grained differences near the origin; the alpha_j coefficients trade
// off throughput, wait, turnaround, and energy objectives.  Higher score =
// scheduled earlier.
#pragma once

#include <string>
#include <vector>

namespace sraps {

struct ScoreWeights {
  /// One coefficient per scored feature (see ScoreFeatureNames()):
  /// {predicted log runtime, predicted mean power, log2 requested nodes,
  ///  priority}.  Positive alpha on a feature *rewards small values* of that
  /// feature (the exp(sqrt)^-1 transform is decreasing) — the default
  /// favours short, low-power, small jobs with a mild priority term.
  std::vector<double> alpha = {2.0, 1.5, 1.0, -0.3};
};

std::vector<std::string> ScoreFeatureNames();

/// Computes S(X) for one job's scored-feature vector.  Features must be
/// >= -1 (the sqrt argument); throws std::invalid_argument otherwise, or on
/// size mismatch with the weights.
double Score(const std::vector<double>& features, const ScoreWeights& weights = {});

}  // namespace sraps
