// Feature normalisation (§4.4.2: "we normalize static features").  Standard
// z-score scaling with degenerate-column protection.
#pragma once

#include <vector>

namespace sraps {

class StandardScaler {
 public:
  /// Fits per-column mean/stddev.  Throws std::invalid_argument on empty or
  /// ragged input.
  void Fit(const std::vector<std::vector<double>>& rows);

  /// (x - mean) / std per column; columns with zero variance map to 0.
  std::vector<double> Transform(const std::vector<double>& row) const;
  std::vector<std::vector<double>> TransformAll(
      const std::vector<std::vector<double>>& rows) const;

  bool fitted() const { return fitted_; }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stds_; }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
  bool fitted_ = false;
};

}  // namespace sraps
