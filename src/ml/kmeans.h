// K-means clustering with k-means++ seeding (§4.4.1 step 1: "partition
// historical jobs into behavioral clusters ... using K-means clustering").
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace sraps {

struct KMeansResult {
  std::vector<std::vector<double>> centroids;  ///< k x d
  std::vector<int> labels;                     ///< one per input row
  double inertia = 0.0;                        ///< sum of squared distances
  int iterations = 0;
};

class KMeans {
 public:
  explicit KMeans(int k, int max_iterations = 100, std::uint64_t seed = 5);

  /// Fits on row-major data.  Throws std::invalid_argument if rows < k or
  /// ragged.  Deterministic for a fixed seed.
  KMeansResult Fit(const std::vector<std::vector<double>>& rows);

  /// Nearest-centroid label for a new point (after Fit).
  int Predict(const std::vector<double>& row) const;

  int k() const { return k_; }
  const std::vector<std::vector<double>>& centroids() const { return centroids_; }

 private:
  int k_;
  int max_iterations_;
  std::uint64_t seed_;
  std::vector<std::vector<double>> centroids_;
};

/// Squared Euclidean distance (shared by k-means and tests).
double SquaredDistance(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace sraps
