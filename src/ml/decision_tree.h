// CART decision trees — the base learner behind the random forest of §4.4.1
// step 2 (classification into behavioural clusters) and the per-cluster
// prediction models of step 3 (regression on runtime/power targets).
// Classification splits on Gini impurity, regression on variance reduction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace sraps {

struct TreeOptions {
  int max_depth = 12;
  int min_samples_split = 4;
  int min_samples_leaf = 2;
  /// Features considered per split; 0 = all (single tree), otherwise a
  /// random subset (random-forest mode).
  int max_features = 0;
};

/// Shared CART implementation.  Task is fixed at construction.
class DecisionTree {
 public:
  enum class Task { kClassification, kRegression };

  DecisionTree(Task task, TreeOptions options = {});

  /// Fits on row-major features.  For classification, y holds integral class
  /// labels >= 0; for regression, real targets.  `row_indices` selects the
  /// training subset (bootstrap sampling); empty = all rows.
  void Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y,
           Rng& rng, const std::vector<std::size_t>& row_indices = {});

  /// Predicted class (as double) or regression value.
  double Predict(const std::vector<double>& row) const;

  bool fitted() const { return !nodes_.empty(); }
  std::size_t node_count() const { return nodes_.size(); }
  int depth() const { return depth_; }

 private:
  struct Node {
    int feature = -1;     ///< -1 = leaf
    double threshold = 0;
    int left = -1;
    int right = -1;
    double value = 0;     ///< leaf prediction
  };

  int Build(const std::vector<std::vector<double>>& x, const std::vector<double>& y,
            std::vector<std::size_t>& idx, std::size_t lo, std::size_t hi, int depth,
            Rng& rng);
  double LeafValue(const std::vector<double>& y, const std::vector<std::size_t>& idx,
                   std::size_t lo, std::size_t hi) const;
  double Impurity(const std::vector<double>& y, const std::vector<std::size_t>& idx,
                  std::size_t lo, std::size_t hi) const;

  Task task_;
  TreeOptions options_;
  std::vector<Node> nodes_;
  int root_ = -1;
  int depth_ = 0;
};

}  // namespace sraps
