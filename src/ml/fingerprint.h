// Early-telemetry job fingerprinting — the paper's named future-work item
// (§5): "if this information [job power profiles] is not available, we have
// to rely on user estimates, or fingerprinting and prediction, which are
// prime candidates for future work."
//
// Given only the first few minutes of a running job's power/utilisation
// telemetry, the fingerprinter matches the observed prefix against clusters
// learned from historical jobs and forecasts the job's remaining runtime and
// steady-state power — inputs a power-aware scheduler can act on mid-run.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/kmeans.h"
#include "ml/scaler.h"
#include "workload/job.h"

namespace sraps {

struct FingerprintForecast {
  int cluster = -1;
  double total_runtime_s = 0.0;      ///< forecast total runtime
  double remaining_runtime_s = 0.0;  ///< total minus observed
  double mean_power_w = 0.0;         ///< forecast whole-job mean node power
  double confidence = 0.0;  ///< 1 / (1 + distance to centroid); higher = closer
};

struct FingerprinterOptions {
  int num_clusters = 5;
  SimDuration prefix = 10 * kMinute;  ///< telemetry window used as the fingerprint
  std::uint64_t seed = 23;
};

class JobFingerprinter {
 public:
  explicit JobFingerprinter(FingerprinterOptions options = {});

  /// Trains on completed historical jobs (recorded runtimes + telemetry).
  /// Throws std::invalid_argument with fewer jobs than clusters.
  void Train(const std::vector<Job>& history);

  bool trained() const { return trained_; }

  /// Forecasts from the first `options.prefix` seconds of the job's traces
  /// plus its static features.  `observed_s` is how long the job has been
  /// running (clamped into [0, forecast total)).
  FingerprintForecast Predict(const Job& job, SimDuration observed_s) const;

  /// The fingerprint feature vector (exposed for tests): static features +
  /// prefix power mean/min/max/sd.
  static std::vector<double> PrefixFeatures(const Job& job, SimDuration prefix);

 private:
  FingerprinterOptions options_;
  StandardScaler scaler_;
  KMeans kmeans_;
  /// Per-cluster forecasts learned at training time.
  std::vector<double> cluster_runtime_s_;
  std::vector<double> cluster_power_w_;
  bool trained_ = false;
};

}  // namespace sraps
