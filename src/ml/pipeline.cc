#include "ml/pipeline.h"

#include <cmath>
#include <stdexcept>

#include "ml/features.h"

namespace sraps {

MlPipeline::MlPipeline(MlPipelineOptions options)
    : options_(options),
      kmeans_(options.num_clusters, 100, options.seed),
      classifier_(options.classifier),
      global_runtime_(options.regressor),
      global_power_(options.regressor) {}

void MlPipeline::Train(const std::vector<Job>& historical) {
  if (static_cast<int>(historical.size()) < options_.num_clusters) {
    throw std::invalid_argument("MlPipeline: fewer jobs than clusters");
  }

  // (1) Clustering on static + dynamic summary features.
  std::vector<std::vector<double>> combined, statics;
  std::vector<std::vector<double>> targets;
  combined.reserve(historical.size());
  for (const Job& j : historical) {
    combined.push_back(CombinedFeatures(j));
    statics.push_back(StaticFeatures(j));
    targets.push_back(Targets(j));
  }
  combined_scaler_.Fit(combined);
  static_scaler_.Fit(statics);
  const auto combined_scaled = combined_scaler_.TransformAll(combined);
  const auto static_scaled = static_scaler_.TransformAll(statics);
  clustering_ = kmeans_.Fit(combined_scaled);

  // (2) Classifier: static features -> cluster label (dynamic features are
  // unavailable at submission, §4.4.1 step 2).
  std::vector<double> labels(clustering_.labels.begin(), clustering_.labels.end());
  classifier_.Fit(static_scaled, labels);
  classifier_accuracy_ = classifier_.Score(static_scaled, labels);

  // (3) Per-cluster regressors on static features.
  runtime_models_.assign(options_.num_clusters,
                         RandomForestRegressor(options_.regressor));
  power_models_.assign(options_.num_clusters, RandomForestRegressor(options_.regressor));
  cluster_has_model_.assign(options_.num_clusters, false);
  std::vector<double> runtime_y, power_y;
  runtime_y.reserve(targets.size());
  for (const auto& t : targets) {
    runtime_y.push_back(t[0]);
    power_y.push_back(t[1]);
  }
  global_runtime_.Fit(static_scaled, runtime_y);
  global_power_.Fit(static_scaled, power_y);

  constexpr std::size_t kMinClusterSize = 8;
  for (int c = 0; c < options_.num_clusters; ++c) {
    std::vector<std::vector<double>> cx;
    std::vector<double> cry, cpy;
    for (std::size_t i = 0; i < historical.size(); ++i) {
      if (clustering_.labels[i] != c) continue;
      cx.push_back(static_scaled[i]);
      cry.push_back(runtime_y[i]);
      cpy.push_back(power_y[i]);
    }
    if (cx.size() < kMinClusterSize) continue;  // fall back to global models
    runtime_models_[c].Fit(cx, cry);
    power_models_[c].Fit(cx, cpy);
    cluster_has_model_[c] = true;
  }

  // Diagnostics: in-sample R^2 routed through the cluster structure.
  {
    double ss_res_r = 0.0, ss_tot_r = 0.0, mean_r = 0.0;
    double ss_res_p = 0.0, ss_tot_p = 0.0, mean_p = 0.0;
    for (std::size_t i = 0; i < historical.size(); ++i) {
      mean_r += runtime_y[i];
      mean_p += power_y[i];
    }
    mean_r /= static_cast<double>(historical.size());
    mean_p /= static_cast<double>(historical.size());
    for (std::size_t i = 0; i < historical.size(); ++i) {
      const int c = clustering_.labels[i];
      const auto& rm = cluster_has_model_[c] ? runtime_models_[c] : global_runtime_;
      const auto& pm = cluster_has_model_[c] ? power_models_[c] : global_power_;
      const double pr = rm.Predict(static_scaled[i]);
      const double pp = pm.Predict(static_scaled[i]);
      ss_res_r += (runtime_y[i] - pr) * (runtime_y[i] - pr);
      ss_tot_r += (runtime_y[i] - mean_r) * (runtime_y[i] - mean_r);
      ss_res_p += (power_y[i] - pp) * (power_y[i] - pp);
      ss_tot_p += (power_y[i] - mean_p) * (power_y[i] - mean_p);
    }
    runtime_r2_ = ss_tot_r > 0 ? 1.0 - ss_res_r / ss_tot_r : 1.0;
    power_r2_ = ss_tot_p > 0 ? 1.0 - ss_res_p / ss_tot_p : 1.0;
  }

  trained_ = true;
}

MlPrediction MlPipeline::Predict(const Job& job) const {
  if (!trained_) throw std::logic_error("MlPipeline: not trained");
  const auto x = static_scaler_.Transform(StaticFeatures(job));
  MlPrediction p;
  p.cluster = classifier_.Predict(x);
  const bool has = p.cluster >= 0 &&
                   p.cluster < static_cast<int>(cluster_has_model_.size()) &&
                   cluster_has_model_[p.cluster];
  const auto& rm = has ? runtime_models_[p.cluster] : global_runtime_;
  const auto& pm = has ? power_models_[p.cluster] : global_power_;
  p.log1p_runtime = rm.Predict(x);
  p.runtime_s = std::expm1(p.log1p_runtime);
  p.mean_power_w = pm.Predict(x);

  // Scored feature vector: predicted runtime/power (normalised to friendly
  // scales), job size, priority.  All >= 0 by construction.
  const std::vector<double> scored = {
      std::max(0.0, p.log1p_runtime),
      std::max(0.0, p.mean_power_w / 100.0),  // hundreds of watts -> O(1..10)
      std::log2(static_cast<double>(std::max(1, job.nodes_required))),
      std::max(0.0, job.priority),
  };
  p.score = Score(scored, options_.weights);
  return p;
}

void MlPipeline::ScoreJobs(std::vector<Job>& jobs) const {
  for (Job& j : jobs) {
    j.ml_score = Predict(j).score;
    j.has_ml_score = true;
  }
}

}  // namespace sraps
