#include "ml/scoring.h"

#include <cmath>
#include <stdexcept>

namespace sraps {

std::vector<std::string> ScoreFeatureNames() {
  return {"pred_log1p_runtime", "pred_mean_power_w", "log2_nodes", "priority"};
}

double Score(const std::vector<double>& features, const ScoreWeights& weights) {
  if (features.size() != weights.alpha.size()) {
    throw std::invalid_argument("Score: feature/weight size mismatch (" +
                                std::to_string(features.size()) + " vs " +
                                std::to_string(weights.alpha.size()) + ")");
  }
  double s = 0.0;
  for (std::size_t j = 0; j < features.size(); ++j) {
    const double x = features[j];
    if (x < -1.0) {
      throw std::invalid_argument("Score: feature " + std::to_string(j) +
                                  " below -1 (sqrt domain)");
    }
    s += weights.alpha[j] / std::exp(std::sqrt(x + 1.0));
  }
  return s;
}

}  // namespace sraps
