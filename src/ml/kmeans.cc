#include "ml/kmeans.h"

#include <limits>
#include <stdexcept>

namespace sraps {

double SquaredDistance(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("SquaredDistance: size mismatch");
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

KMeans::KMeans(int k, int max_iterations, std::uint64_t seed)
    : k_(k), max_iterations_(max_iterations), seed_(seed) {
  if (k <= 0) throw std::invalid_argument("KMeans: k must be > 0");
  if (max_iterations <= 0) throw std::invalid_argument("KMeans: max_iterations <= 0");
}

KMeansResult KMeans::Fit(const std::vector<std::vector<double>>& rows) {
  if (static_cast<int>(rows.size()) < k_) {
    throw std::invalid_argument("KMeans: fewer rows than clusters");
  }
  const std::size_t dim = rows.front().size();
  for (const auto& r : rows) {
    if (r.size() != dim) throw std::invalid_argument("KMeans: ragged input");
  }
  Rng rng(seed_);

  // k-means++ seeding.
  centroids_.clear();
  centroids_.push_back(
      rows[rng.UniformInt(0, static_cast<std::int64_t>(rows.size()) - 1)]);
  std::vector<double> dist2(rows.size(), 0.0);
  while (static_cast<int>(centroids_.size()) < k_) {
    double total = 0.0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : centroids_) best = std::min(best, SquaredDistance(rows[i], c));
      dist2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All remaining points coincide with centroids; duplicate one.
      centroids_.push_back(centroids_.back());
      continue;
    }
    double draw = rng.NextDouble() * total;
    std::size_t chosen = rows.size() - 1;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      draw -= dist2[i];
      if (draw <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids_.push_back(rows[chosen]);
  }

  // Lloyd iterations.
  KMeansResult result;
  result.labels.assign(rows.size(), 0);
  for (int iter = 0; iter < max_iterations_; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (int c = 0; c < k_; ++c) {
        const double d = SquaredDistance(rows[i], centroids_[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.labels[i] != best) {
        result.labels[i] = best;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    // Recompute centroids.
    std::vector<std::vector<double>> sums(k_, std::vector<double>(dim, 0.0));
    std::vector<int> counts(k_, 0);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const int c = result.labels[i];
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) sums[c][d] += rows[i][d];
    }
    for (int c = 0; c < k_; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its old centroid
      for (std::size_t d = 0; d < dim; ++d) {
        centroids_[c][d] = sums[c][d] / counts[c];
      }
    }
    if (!changed && iter > 0) break;
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    result.inertia += SquaredDistance(rows[i], centroids_[result.labels[i]]);
  }
  result.centroids = centroids_;
  return result;
}

int KMeans::Predict(const std::vector<double>& row) const {
  if (centroids_.empty()) throw std::logic_error("KMeans: not fitted");
  int best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    const double d = SquaredDistance(row, centroids_[c]);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace sraps
