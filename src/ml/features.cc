#include "ml/features.h"

#include <cmath>
#include <functional>

#include "common/time.h"

namespace sraps {
namespace {

double Log1p(double v) { return std::log1p(std::max(0.0, v)); }

double AccountBucket(const std::string& account) {
  // Stable small-cardinality encoding of the account identity.
  return static_cast<double>(std::hash<std::string>{}(account) % 64);
}

/// Mean node power from whatever telemetry the job has.
double MeanPower(const Job& job, SimDuration runtime) {
  if (!job.node_power_w.empty()) return job.node_power_w.MeanOver(runtime);
  // No direct power: a crude utilisation proxy (200 W + 400 W * mixed util).
  const double cpu = job.cpu_util.empty() ? 0.0 : job.cpu_util.MeanOver(runtime);
  const double gpu = job.gpu_util.empty() ? 0.0 : job.gpu_util.MeanOver(runtime);
  return 200.0 + 400.0 * (0.4 * cpu + 0.6 * gpu);
}

}  // namespace

std::vector<double> StaticFeatures(const Job& job) {
  const double hour =
      static_cast<double>((job.submit_time % kDay + kDay) % kDay) / kHour;
  const double dow = static_cast<double>((job.submit_time / kDay) % 7);
  return {
      std::log2(static_cast<double>(std::max(1, job.nodes_required))),
      Log1p(static_cast<double>(job.time_limit)),
      hour,
      dow,
      AccountBucket(job.account),
      job.priority,
  };
}

std::vector<std::string> StaticFeatureNames() {
  return {"log2_nodes", "log1p_time_limit", "submit_hour", "submit_dow",
          "account_bucket", "priority"};
}

std::vector<double> DynamicFeatures(const Job& job) {
  const SimDuration runtime = job.RecordedRuntime();
  double p_mean, p_min, p_max, p_sd;
  if (!job.node_power_w.empty()) {
    p_mean = job.node_power_w.MeanOver(runtime);
    p_min = job.node_power_w.RawMin();
    p_max = job.node_power_w.RawMax();
    p_sd = job.node_power_w.RawStdDev();
  } else {
    p_mean = MeanPower(job, runtime);
    p_min = p_mean;
    p_max = p_mean;
    p_sd = 0.0;
  }
  const double cpu = job.cpu_util.empty() ? 0.0 : job.cpu_util.MeanOver(runtime);
  const double gpu = job.gpu_util.empty() ? 0.0 : job.gpu_util.MeanOver(runtime);
  const double energy = p_mean * static_cast<double>(runtime) * job.nodes_required;
  return {
      Log1p(static_cast<double>(runtime)),
      p_mean,
      p_min,
      p_max,
      p_sd,
      cpu,
      gpu,
      Log1p(energy),
  };
}

std::vector<std::string> DynamicFeatureNames() {
  return {"log1p_runtime", "power_mean", "power_min", "power_max",
          "power_sd",      "cpu_util",   "gpu_util",  "log1p_energy"};
}

std::vector<double> CombinedFeatures(const Job& job) {
  std::vector<double> f = StaticFeatures(job);
  const std::vector<double> d = DynamicFeatures(job);
  f.insert(f.end(), d.begin(), d.end());
  return f;
}

std::vector<double> Targets(const Job& job) {
  const SimDuration runtime = job.RecordedRuntime();
  return {Log1p(static_cast<double>(runtime)), MeanPower(job, runtime)};
}

std::vector<std::string> TargetNames() { return {"log1p_runtime", "mean_power_w"}; }

}  // namespace sraps
