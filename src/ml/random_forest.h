// Random forests: bootstrap-aggregated CART trees with per-split feature
// subsampling.  The classifier realises §4.4.1 step 2 ("we train a Random
// Forest model to learn the relationships between job characteristics and
// the target metric"); the regressor realises step 3 (per-cluster target
// prediction).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/decision_tree.h"

namespace sraps {

struct ForestOptions {
  int num_trees = 25;
  TreeOptions tree;
  double bootstrap_fraction = 1.0;  ///< samples per tree (with replacement)
  std::uint64_t seed = 11;
};

class RandomForestClassifier {
 public:
  explicit RandomForestClassifier(ForestOptions options = {});

  /// y holds integer class labels (as doubles) >= 0.
  void Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y);

  /// Majority vote across trees.
  int Predict(const std::vector<double>& row) const;

  /// Fraction of trees voting for each class (size = max label + 1).
  std::vector<double> PredictProba(const std::vector<double>& row) const;

  /// Training accuracy (quick sanity metric for tests/benches).
  double Score(const std::vector<std::vector<double>>& x,
               const std::vector<double>& y) const;

  bool fitted() const { return !trees_.empty(); }

 private:
  ForestOptions options_;
  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
};

class RandomForestRegressor {
 public:
  explicit RandomForestRegressor(ForestOptions options = {});

  void Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y);

  /// Mean across trees.
  double Predict(const std::vector<double>& row) const;

  /// R^2 on the given data.
  double Score(const std::vector<std::vector<double>>& x,
               const std::vector<double>& y) const;

  bool fitted() const { return !trees_.empty(); }

 private:
  ForestOptions options_;
  std::vector<DecisionTree> trees_;
};

}  // namespace sraps
