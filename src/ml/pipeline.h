// End-to-end ML-guided scheduling pipeline (§4.4, Fig. 9):
//   Training:  (1) cluster historical jobs on static + dynamic summary
//              features (K-means); (2) train a random-forest classifier from
//              pre-submission features to cluster labels; (3) per cluster,
//              train random-forest regressors predicting runtime and power
//              from pre-submission features.
//   Inference: normalise static features, classify into a cluster, invoke
//              that cluster's predictors, and rank jobs with the exponential
//              score of §4.4.2 — "this design avoids global approximations
//              and ensures predictions are tied to the job's class".
#pragma once

#include <cstdint>
#include <vector>

#include "ml/kmeans.h"
#include "ml/random_forest.h"
#include "ml/scaler.h"
#include "ml/scoring.h"
#include "workload/job.h"

namespace sraps {

struct MlPipelineOptions {
  int num_clusters = 5;  ///< the artifact clusters F-Data into 5
  ForestOptions classifier;
  ForestOptions regressor;
  ScoreWeights weights;
  std::uint64_t seed = 17;
};

struct MlPrediction {
  int cluster = -1;
  double log1p_runtime = 0.0;  ///< predicted log1p(seconds)
  double runtime_s = 0.0;      ///< expm1 of the above
  double mean_power_w = 0.0;
  double score = 0.0;
};

class MlPipeline {
 public:
  explicit MlPipeline(MlPipelineOptions options = {});

  /// Trains on completed historical jobs (recorded runtimes + telemetry
  /// required).  Throws std::invalid_argument if fewer jobs than clusters.
  void Train(const std::vector<Job>& historical);

  bool trained() const { return trained_; }

  /// Full inference for one (unseen) job using only static features.
  MlPrediction Predict(const Job& job) const;

  /// Applies inference to every job: fills ml_score / has_ml_score, ready
  /// for Policy::kMl.
  void ScoreJobs(std::vector<Job>& jobs) const;

  // --- training diagnostics -------------------------------------------------
  double classifier_train_accuracy() const { return classifier_accuracy_; }
  double runtime_r2() const { return runtime_r2_; }
  double power_r2() const { return power_r2_; }
  const KMeansResult& clustering() const { return clustering_; }

 private:
  MlPipelineOptions options_;
  bool trained_ = false;

  StandardScaler combined_scaler_;  ///< for clustering space
  StandardScaler static_scaler_;    ///< for classifier/regressors
  KMeans kmeans_;
  KMeansResult clustering_;
  RandomForestClassifier classifier_;
  /// Per-cluster regressors: [cluster] -> {runtime model, power model}.
  std::vector<RandomForestRegressor> runtime_models_;
  std::vector<RandomForestRegressor> power_models_;
  /// Fallback global models for clusters with too few members.
  RandomForestRegressor global_runtime_;
  RandomForestRegressor global_power_;
  std::vector<bool> cluster_has_model_;

  double classifier_accuracy_ = 0.0;
  double runtime_r2_ = 0.0;
  double power_r2_ = 0.0;
};

}  // namespace sraps
