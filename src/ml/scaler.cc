#include "ml/scaler.h"

#include <cmath>
#include <stdexcept>

namespace sraps {

void StandardScaler::Fit(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) throw std::invalid_argument("StandardScaler: empty input");
  const std::size_t cols = rows.front().size();
  if (cols == 0) throw std::invalid_argument("StandardScaler: zero-width rows");
  means_.assign(cols, 0.0);
  stds_.assign(cols, 0.0);
  for (const auto& r : rows) {
    if (r.size() != cols) throw std::invalid_argument("StandardScaler: ragged input");
    for (std::size_t c = 0; c < cols; ++c) means_[c] += r[c];
  }
  for (auto& m : means_) m /= static_cast<double>(rows.size());
  for (const auto& r : rows) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double d = r[c] - means_[c];
      stds_[c] += d * d;
    }
  }
  for (auto& s : stds_) s = std::sqrt(s / static_cast<double>(rows.size()));
  fitted_ = true;
}

std::vector<double> StandardScaler::Transform(const std::vector<double>& row) const {
  if (!fitted_) throw std::logic_error("StandardScaler: not fitted");
  if (row.size() != means_.size()) {
    throw std::invalid_argument("StandardScaler: width mismatch");
  }
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) {
    out[c] = stds_[c] > 0.0 ? (row[c] - means_[c]) / stds_[c] : 0.0;
  }
  return out;
}

std::vector<std::vector<double>> StandardScaler::TransformAll(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(Transform(r));
  return out;
}

}  // namespace sraps
