// Job feature extraction for the ML pipeline (§4.4).
//
// Static (pre-submission) features are everything known when the job enters
// the queue; dynamic features summarise telemetry — and because "timeseries
// data is inherently noisy and high-dimensional", §4.4.3 extracts summary
// statistics (max, min, mean, stddev) rather than raw series.
#pragma once

#include <string>
#include <vector>

#include "workload/job.h"

namespace sraps {

/// Static features, available at submission: requested nodes (log2), wall
/// limit (log), submit hour-of-day, submit day-of-week, account hash bucket,
/// dataset priority.
std::vector<double> StaticFeatures(const Job& job);
std::vector<std::string> StaticFeatureNames();

/// Dynamic features from completed-job telemetry: runtime (log), per-node
/// power mean/min/max/stddev, cpu/gpu utilisation means, total energy (log).
/// Requires a recorded runtime; power falls back to utilisation summaries
/// when no power trace exists.
std::vector<double> DynamicFeatures(const Job& job);
std::vector<std::string> DynamicFeatureNames();

/// Static + dynamic concatenated (clustering input, §4.4.1 step 1).
std::vector<double> CombinedFeatures(const Job& job);

/// Regression targets per job: {log runtime, mean node power W}.
std::vector<double> Targets(const Job& job);
std::vector<std::string> TargetNames();

}  // namespace sraps
