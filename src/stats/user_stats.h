// Per-user aggregation (§3.2.6: S-RAPS "adds collection of statistics for
// jobs, users, accounts").  Users are finer-grained than accounts — several
// users share one allocation — and the per-user view is what exposes
// fairness questions: "we can assess if a setting of the scheduler favors
// specific jobs or users".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "stats/stats.h"

namespace sraps {

struct UserStats {
  std::string user;
  std::string account;  ///< the (last-seen) account the user submitted under
  std::int64_t jobs_completed = 0;
  double node_seconds = 0.0;
  double energy_j = 0.0;
  double wait_seconds = 0.0;
  double turnaround_seconds = 0.0;
  double max_wait_seconds = 0.0;

  double AvgWait() const;
  double AvgTurnaround() const;
  double NodeHours() const { return node_seconds / 3600.0; }
};

/// Aggregates JobRecords by user.
class UserStatsCollector {
 public:
  /// Builds per-user stats from a finished simulation's job records.
  static UserStatsCollector FromRecords(const std::vector<JobRecord>& records);

  void Add(const JobRecord& record);

  std::size_t size() const { return users_.size(); }
  bool Has(const std::string& user) const { return users_.count(user) != 0; }
  /// Throws std::out_of_range for unknown users.
  const UserStats& Get(const std::string& user) const;
  std::vector<std::string> UserNames() const;

  /// Users sorted by a metric, descending.  Metric: "wait", "node_hours",
  /// "energy", "jobs".  Throws std::invalid_argument on unknown metric.
  std::vector<UserStats> TopBy(const std::string& metric, std::size_t k) const;

  /// Fairness indicator: max over users of avg wait divided by the mean of
  /// user avg waits (1.0 = perfectly even).  0 when no users have waits.
  double WaitImbalance() const;

  JsonValue ToJson() const;

 private:
  std::map<std::string, UserStats> users_;
};

}  // namespace sraps
