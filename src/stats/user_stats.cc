#include "stats/user_stats.h"

#include <algorithm>
#include <stdexcept>

namespace sraps {

double UserStats::AvgWait() const {
  return jobs_completed ? wait_seconds / static_cast<double>(jobs_completed) : 0.0;
}

double UserStats::AvgTurnaround() const {
  return jobs_completed ? turnaround_seconds / static_cast<double>(jobs_completed) : 0.0;
}

UserStatsCollector UserStatsCollector::FromRecords(
    const std::vector<JobRecord>& records) {
  UserStatsCollector c;
  for (const auto& r : records) c.Add(r);
  return c;
}

void UserStatsCollector::Add(const JobRecord& record) {
  auto [it, inserted] = users_.try_emplace(record.user);
  UserStats& u = it->second;
  if (inserted) u.user = record.user;
  u.account = record.account;
  u.jobs_completed += 1;
  u.node_seconds += record.NodeSeconds();
  u.energy_j += record.energy_j;
  u.wait_seconds += static_cast<double>(record.Wait());
  u.turnaround_seconds += static_cast<double>(record.Turnaround());
  u.max_wait_seconds = std::max(u.max_wait_seconds, static_cast<double>(record.Wait()));
}

const UserStats& UserStatsCollector::Get(const std::string& user) const {
  auto it = users_.find(user);
  if (it == users_.end()) throw std::out_of_range("UserStats: unknown user " + user);
  return it->second;
}

std::vector<std::string> UserStatsCollector::UserNames() const {
  std::vector<std::string> names;
  names.reserve(users_.size());
  for (const auto& [name, u] : users_) names.push_back(name);
  return names;
}

std::vector<UserStats> UserStatsCollector::TopBy(const std::string& metric,
                                                 std::size_t k) const {
  double UserStats::*field = nullptr;
  bool by_jobs = false;
  if (metric == "wait") {
    field = &UserStats::wait_seconds;
  } else if (metric == "node_hours") {
    field = &UserStats::node_seconds;
  } else if (metric == "energy") {
    field = &UserStats::energy_j;
  } else if (metric == "jobs") {
    by_jobs = true;
  } else {
    throw std::invalid_argument("UserStats::TopBy: unknown metric '" + metric + "'");
  }
  std::vector<UserStats> all;
  all.reserve(users_.size());
  for (const auto& [name, u] : users_) all.push_back(u);
  std::sort(all.begin(), all.end(), [&](const UserStats& a, const UserStats& b) {
    if (by_jobs) return a.jobs_completed > b.jobs_completed;
    return a.*field > b.*field;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

double UserStatsCollector::WaitImbalance() const {
  double sum = 0.0, max = 0.0;
  std::size_t n = 0;
  for (const auto& [name, u] : users_) {
    const double w = u.AvgWait();
    sum += w;
    max = std::max(max, w);
    ++n;
  }
  if (n == 0 || sum <= 0.0) return 0.0;
  const double mean = sum / static_cast<double>(n);
  return max / mean;
}

JsonValue UserStatsCollector::ToJson() const {
  JsonObject root;
  for (const auto& [name, u] : users_) {
    JsonObject o;
    o["account"] = u.account;
    o["jobs_completed"] = JsonValue(u.jobs_completed);
    o["node_hours"] = u.NodeHours();
    o["energy_j"] = u.energy_j;
    o["avg_wait_s"] = u.AvgWait();
    o["avg_turnaround_s"] = u.AvgTurnaround();
    o["max_wait_s"] = u.max_wait_seconds;
    root[name] = JsonValue(std::move(o));
  }
  return JsonValue(std::move(root));
}

}  // namespace sraps
