// Systems accounting (§3.2.6): per-job records and the aggregate metrics the
// paper tracks — throughput, wait, turnaround, node-hours, energy, EDP and
// ED²P, CPU/GPU utilisation, job-size histogram, area-weighted response
// time and priority-weighted specific response time (Goponenko et al.), plus
// carbon/cost estimates.  Fig. 10b's 12-axis radar is built from these.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/json.h"
#include "common/time.h"
#include "workload/job.h"

namespace sraps {

/// Immutable record of one completed job.
struct JobRecord {
  JobId id = 0;
  std::string account;
  std::string user;
  SimTime submit = 0;
  SimTime start = 0;
  SimTime end = 0;
  int nodes = 0;
  double priority = 0.0;
  double energy_j = 0.0;
  double avg_cpu_util = 0.0;
  double avg_gpu_util = 0.0;

  SimDuration Wait() const { return start - submit; }
  SimDuration Turnaround() const { return end - submit; }
  SimDuration Runtime() const { return end - start; }
  double NodeSeconds() const { return static_cast<double>(Runtime()) * nodes; }
  double Edp() const { return energy_j * static_cast<double>(Runtime()); }
  double Ed2p() const {
    const double r = static_cast<double>(Runtime());
    return energy_j * r * r;
  }
};

/// Tunables for derived cost metrics.
struct CostModel {
  double usd_per_kwh = 0.06;
  double kg_co2_per_kwh = 0.37;  ///< US grid average
};

class SimulationStats {
 public:
  SimulationStats();

  /// Credits one completed job.  The engine calls this with the simulated
  /// energy; avg utilisations are taken from the job's traces.
  void RecordCompletion(const Job& job, double energy_j);

  // --- aggregates ----------------------------------------------------------
  std::size_t jobs_completed() const { return records_.size(); }
  const std::vector<JobRecord>& records() const { return records_; }

  double AvgWaitSeconds() const;
  double AvgTurnaroundSeconds() const;
  double AvgRuntimeSeconds() const;
  double AvgJobSizeNodes() const;
  double AvgNodeHours() const;
  double TotalEnergyJ() const;
  double AvgEnergyPerJobJ() const;
  double AvgEdp() const;
  double AvgEd2p() const;
  double AvgCpuUtil() const;
  double AvgGpuUtil() const;
  /// Jobs completed per hour of the window [first submit, last end].
  double ThroughputPerHour() const;

  /// Area-weighted average response time (Goponenko et al.): the mean
  /// turnaround weighted by each job's node-seconds area — large long jobs
  /// dominate, capturing packing efficiency.
  double AreaWeightedResponseTime() const;

  /// Priority-weighted specific response time: mean of (turnaround per unit
  /// node-hour), weighted by job priority — a fairness-sensitive variant.
  double PriorityWeightedSpecificResponseTime() const;

  /// Job-size histogram (small < 128 nodes <= medium < 1024 <= large).
  const Histogram& JobSizeHistogram() const { return size_hist_; }

  /// Derived cost estimates (flat CostModel factors over completed-job
  /// energy — the original post-hoc accounting).
  double EnergyCostUsd(const CostModel& cm = {}) const;
  double CarbonKgCo2(const CostModel& cm = {}) const;

  /// Signal-integrated totals: the engine accumulates wall energy against
  /// the GridEnvironment's time-varying price/carbon signals during the run
  /// and mirrors the running totals here.  has_grid() is false (and the
  /// ToJson keys absent) when no grid signal was configured.
  void SetGridTotals(double cost_usd, double co2_kg) {
    has_grid_ = true;
    grid_cost_usd_ = cost_usd;
    grid_co2_kg_ = co2_kg;
  }
  bool has_grid() const { return has_grid_; }
  double grid_cost_usd() const { return grid_cost_usd_; }
  double grid_co2_kg() const { return grid_co2_kg_; }

  /// Thermal-placement totals: the engine mirrors its running fan/leakage
  /// energy and the peak node-inlet temperature here whenever a thermal
  /// topology is active.  has_thermal() is false (and the ToJson keys
  /// absent) when the system declares no topology, so legacy stats blobs
  /// serialise unchanged.
  void SetThermalTotals(double leak_energy_j, double peak_inlet_c) {
    has_thermal_ = true;
    thermal_leak_j_ = leak_energy_j;
    peak_inlet_c_ = peak_inlet_c;
  }
  bool has_thermal() const { return has_thermal_; }
  double thermal_leak_j() const { return thermal_leak_j_; }
  double peak_inlet_c() const { return peak_inlet_c_; }

  /// Per-machine-class IT energy breakdown (power-state runs).  The engine
  /// registers the class names once, then mirrors its running accumulators
  /// here every step; ToJson emits "class_energy_kwh" only after names are
  /// set, so legacy runs serialise unchanged.
  void SetClassNames(std::vector<std::string> names) {
    class_names_ = std::move(names);
    class_energy_j_.resize(class_names_.size(), 0.0);
  }
  void SetClassEnergy(const std::vector<double>& joules) {
    class_energy_j_ = joules;
  }
  bool has_class_energy() const { return !class_names_.empty(); }
  const std::vector<std::string>& class_names() const { return class_names_; }
  const std::vector<double>& class_energy_j() const { return class_energy_j_; }

  /// The 12 Fig. 10b objectives, in plot order.  All are lower-is-better
  /// (count-like metrics enter inverted, as the paper does).
  /// Order: avg wait, avg turnaround, avg node-hours, avg ED²P,
  /// 1/jobs-completed, 1/throughput, avg runtime, 1/avg CPU util,
  /// 1/avg GPU util, PW-SRT, avg energy, AW-RT.
  std::vector<double> MultiObjectiveVector() const;
  static std::vector<std::string> MultiObjectiveLabels();

  /// stats.out-style JSON blob of every aggregate.
  JsonValue ToJson() const;

  /// Order-sensitive 64-bit digest over every completion record, hashing the
  /// raw bit patterns of times, energy, and utilisations: two runs agree iff
  /// their completions are bit-identical in value *and* order.  The
  /// event-calendar A/B equivalence tests and the CI perf gate use this as a
  /// cheap determinism probe.
  std::uint64_t Fingerprint() const;

 private:
  std::vector<JobRecord> records_;
  Histogram size_hist_;
  bool has_grid_ = false;
  double grid_cost_usd_ = 0.0;
  double grid_co2_kg_ = 0.0;
  bool has_thermal_ = false;
  double thermal_leak_j_ = 0.0;
  double peak_inlet_c_ = 0.0;
  std::vector<std::string> class_names_;
  std::vector<double> class_energy_j_;
};

/// L2-normalises a set of per-policy objective vectors (rows = policies),
/// reproducing Fig. 10b's normalisation so policies are comparable per axis.
std::vector<std::vector<double>> NormalizeObjectives(
    std::vector<std::vector<double>> per_policy);

}  // namespace sraps
