// Carbon accounting over the simulated power series (§3.2.6 tracks "cost
// estimates for carbon emissions").  Grid carbon intensity is not constant:
// it follows a diurnal shape (solar mid-day dips, evening fossil peaks), so
// when a scheduler moves load in time it also moves emissions.  This module
// integrates system power against a configurable intensity profile —
// enabling the sustainability what-if studies the paper motivates.
//
// The profile delegates to the grid subsystem's GridSignal, so it is no
// longer limited to 24 hourly day-periodic samples: any step series
// (non-periodic, arbitrary resolution — e.g. a real grid-operator feed
// loaded via GridSignal::FromCsv) can drive the integration.  The classic
// Constant/Diurnal/hourly constructors keep their exact semantics.
#pragma once

#include <vector>

#include "common/time.h"
#include "grid/grid_signal.h"
#include "telemetry/recorder.h"

namespace sraps {

/// Grid carbon-intensity profile in kg CO2 per kWh — a thin, validated
/// wrapper over GridSignal.  The hourly constructors produce a day-periodic
/// signal whose At() is bit-identical to the original hourly table lookup.
class CarbonIntensityProfile {
 public:
  /// Flat profile (classic constant-factor accounting).
  static CarbonIntensityProfile Constant(double kg_per_kwh);

  /// A stylised diurnal curve: `base` overnight, dipping to `base*solar_dip`
  /// around mid-day (solar), peaking at `base*evening_peak` around 19:00.
  static CarbonIntensityProfile Diurnal(double base = 0.4, double solar_dip = 0.6,
                                        double evening_peak = 1.3);

  /// Custom hourly values; must contain exactly 24 non-negative entries.
  explicit CarbonIntensityProfile(std::vector<double> hourly);

  /// Generalised profile from any non-empty GridSignal (arbitrary
  /// resolution, optionally non-periodic).  Throws std::invalid_argument on
  /// an empty signal or negative intensities.
  explicit CarbonIntensityProfile(GridSignal signal);

  /// Intensity at an absolute sim time.
  double At(SimTime t) const { return signal_.At(t); }

  /// The 24 hourly values for day-periodic hourly profiles (Constant /
  /// Diurnal / the hourly constructor); empty for non-periodic signals.
  const std::vector<double>& hourly() const;

  /// The mean step value — the flat-equivalent baseline.  For the hourly
  /// constructors this is the plain hourly average, bit-identical to the
  /// original 24-entry table's.
  double MeanIntensity() const { return signal_.MeanValue(); }

  const GridSignal& signal() const { return signal_; }

 private:
  GridSignal signal_;
};

struct CarbonReport {
  double energy_kwh = 0.0;
  double emissions_kg = 0.0;
  /// Emissions under a flat profile with the same daily-average intensity —
  /// the baseline that shows how much the *timing* of load matters.
  double flat_equivalent_kg = 0.0;
  /// emissions / flat_equivalent; < 1 means the load sat in cleaner hours.
  double timing_factor = 1.0;
};

/// Integrates the recorder's `power_kw` channel (trapezoidal) against the
/// profile.  Throws std::out_of_range if the channel is missing, or
/// std::logic_error with fewer than 2 samples.
CarbonReport ComputeCarbon(const TimeSeriesRecorder& recorder,
                           const CarbonIntensityProfile& profile);

}  // namespace sraps
