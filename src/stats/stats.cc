#include "stats/stats.h"

#include <algorithm>
#include <stdexcept>

#include "common/mathutil.h"

namespace sraps {
namespace {

constexpr double kJoulePerKwh = 3.6e6;

double SafeInverse(double v) { return v > 0.0 ? 1.0 / v : 0.0; }

}  // namespace

SimulationStats::SimulationStats()
    : size_hist_({0.0, 128.0, 1024.0, 1e9}, {"small", "medium", "large"}) {}

void SimulationStats::RecordCompletion(const Job& job, double energy_j) {
  if (job.start < 0 || job.end < job.start) {
    throw std::logic_error("SimulationStats: job " + std::to_string(job.id) +
                           " not completed");
  }
  JobRecord r;
  r.id = job.id;
  r.account = job.account;
  r.user = job.user;
  r.submit = job.submit_time;
  r.start = job.start;
  r.end = job.end;
  r.nodes = job.nodes_required;
  r.priority = job.priority;
  r.energy_j = energy_j;
  const SimDuration runtime = job.end - job.start;
  r.avg_cpu_util = job.cpu_util.empty() ? 0.0 : job.cpu_util.MeanOver(runtime);
  r.avg_gpu_util = job.gpu_util.empty() ? 0.0 : job.gpu_util.MeanOver(runtime);
  size_hist_.Add(static_cast<double>(r.nodes));
  records_.push_back(std::move(r));
}

std::uint64_t SimulationStats::Fingerprint() const {
  // FNV-1a, fed field-by-field so padding bytes never leak in.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  const auto mix_i64 = [&](std::int64_t v) { mix(&v, sizeof v); };
  const auto mix_f64 = [&](double v) { mix(&v, sizeof v); };
  for (const JobRecord& r : records_) {
    mix_i64(r.id);
    mix(r.account.data(), r.account.size());
    mix_i64(r.submit);
    mix_i64(r.start);
    mix_i64(r.end);
    mix_i64(r.nodes);
    mix_f64(r.priority);
    mix_f64(r.energy_j);
    mix_f64(r.avg_cpu_util);
    mix_f64(r.avg_gpu_util);
  }
  return h;
}

double SimulationStats::AvgWaitSeconds() const {
  if (records_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : records_) s += static_cast<double>(r.Wait());
  return s / static_cast<double>(records_.size());
}

double SimulationStats::AvgTurnaroundSeconds() const {
  if (records_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : records_) s += static_cast<double>(r.Turnaround());
  return s / static_cast<double>(records_.size());
}

double SimulationStats::AvgRuntimeSeconds() const {
  if (records_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : records_) s += static_cast<double>(r.Runtime());
  return s / static_cast<double>(records_.size());
}

double SimulationStats::AvgJobSizeNodes() const {
  if (records_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : records_) s += r.nodes;
  return s / static_cast<double>(records_.size());
}

double SimulationStats::AvgNodeHours() const {
  if (records_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : records_) s += r.NodeSeconds() / 3600.0;
  return s / static_cast<double>(records_.size());
}

double SimulationStats::TotalEnergyJ() const {
  double s = 0.0;
  for (const auto& r : records_) s += r.energy_j;
  return s;
}

double SimulationStats::AvgEnergyPerJobJ() const {
  if (records_.empty()) return 0.0;
  return TotalEnergyJ() / static_cast<double>(records_.size());
}

double SimulationStats::AvgEdp() const {
  if (records_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : records_) s += r.Edp();
  return s / static_cast<double>(records_.size());
}

double SimulationStats::AvgEd2p() const {
  if (records_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : records_) s += r.Ed2p();
  return s / static_cast<double>(records_.size());
}

double SimulationStats::AvgCpuUtil() const {
  if (records_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : records_) s += r.avg_cpu_util;
  return s / static_cast<double>(records_.size());
}

double SimulationStats::AvgGpuUtil() const {
  if (records_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : records_) s += r.avg_gpu_util;
  return s / static_cast<double>(records_.size());
}

double SimulationStats::ThroughputPerHour() const {
  if (records_.empty()) return 0.0;
  SimTime first_submit = records_.front().submit;
  SimTime last_end = records_.front().end;
  for (const auto& r : records_) {
    first_submit = std::min(first_submit, r.submit);
    last_end = std::max(last_end, r.end);
  }
  const double hours = static_cast<double>(last_end - first_submit) / 3600.0;
  if (hours <= 0.0) return 0.0;
  return static_cast<double>(records_.size()) / hours;
}

double SimulationStats::AreaWeightedResponseTime() const {
  double num = 0.0, den = 0.0;
  for (const auto& r : records_) {
    const double area = r.NodeSeconds();
    num += area * static_cast<double>(r.Turnaround());
    den += area;
  }
  return den > 0.0 ? num / den : 0.0;
}

double SimulationStats::PriorityWeightedSpecificResponseTime() const {
  double num = 0.0, den = 0.0;
  for (const auto& r : records_) {
    const double area = r.NodeSeconds();
    if (area <= 0.0) continue;
    // Specific response time: turnaround per node-hour of work done.
    const double srt = static_cast<double>(r.Turnaround()) / (area / 3600.0);
    const double w = std::max(r.priority, 1e-9);  // zero-priority jobs still count
    num += w * srt;
    den += w;
  }
  return den > 0.0 ? num / den : 0.0;
}

double SimulationStats::EnergyCostUsd(const CostModel& cm) const {
  return TotalEnergyJ() / kJoulePerKwh * cm.usd_per_kwh;
}

double SimulationStats::CarbonKgCo2(const CostModel& cm) const {
  return TotalEnergyJ() / kJoulePerKwh * cm.kg_co2_per_kwh;
}

std::vector<double> SimulationStats::MultiObjectiveVector() const {
  return {
      AvgWaitSeconds(),
      AvgTurnaroundSeconds(),
      AvgNodeHours(),
      AvgEd2p(),
      SafeInverse(static_cast<double>(jobs_completed())),
      SafeInverse(ThroughputPerHour()),
      AvgRuntimeSeconds(),
      SafeInverse(AvgCpuUtil()),
      SafeInverse(AvgGpuUtil()),
      PriorityWeightedSpecificResponseTime(),
      AvgEnergyPerJobJ(),
      AreaWeightedResponseTime(),
  };
}

std::vector<std::string> SimulationStats::MultiObjectiveLabels() {
  return {
      "avg_wait",        "avg_turnaround",    "avg_node_hours",     "avg_ed2p",
      "inv_jobs",        "inv_throughput",    "avg_runtime",        "inv_cpu_util",
      "inv_gpu_util",    "pw_specific_rt",    "avg_energy",         "aw_response_time",
  };
}

JsonValue SimulationStats::ToJson() const {
  JsonObject o;
  o["jobs_completed"] = JsonValue(static_cast<std::int64_t>(jobs_completed()));
  o["avg_wait_s"] = AvgWaitSeconds();
  o["avg_turnaround_s"] = AvgTurnaroundSeconds();
  o["avg_runtime_s"] = AvgRuntimeSeconds();
  o["avg_job_size_nodes"] = AvgJobSizeNodes();
  o["avg_node_hours"] = AvgNodeHours();
  o["total_energy_j"] = TotalEnergyJ();
  o["avg_energy_per_job_j"] = AvgEnergyPerJobJ();
  o["avg_edp"] = AvgEdp();
  o["avg_ed2p"] = AvgEd2p();
  o["avg_cpu_util"] = AvgCpuUtil();
  o["avg_gpu_util"] = AvgGpuUtil();
  o["throughput_per_hour"] = ThroughputPerHour();
  o["area_weighted_response_time_s"] = AreaWeightedResponseTime();
  o["priority_weighted_specific_rt"] = PriorityWeightedSpecificResponseTime();
  o["energy_cost_usd"] = EnergyCostUsd();
  o["carbon_kg_co2"] = CarbonKgCo2();
  if (has_grid_) {
    o["grid_cost_usd"] = grid_cost_usd_;
    o["grid_co2_kg"] = grid_co2_kg_;
  }
  if (has_thermal_) {
    o["thermal_leak_kwh"] = thermal_leak_j_ / kJoulePerKwh;
    o["peak_inlet_c"] = peak_inlet_c_;
  }
  if (!class_names_.empty()) {
    JsonObject per_class;
    for (std::size_t i = 0; i < class_names_.size(); ++i) {
      const double j = i < class_energy_j_.size() ? class_energy_j_[i] : 0.0;
      per_class[class_names_[i]] = j / kJoulePerKwh;
    }
    o["class_energy_kwh"] = JsonValue(std::move(per_class));
  }
  JsonObject hist;
  for (std::size_t i = 0; i < size_hist_.num_buckets(); ++i) {
    hist[size_hist_.labels()[i]] = size_hist_.Count(i);
  }
  o["job_size_histogram"] = JsonValue(std::move(hist));
  return JsonValue(std::move(o));
}

std::vector<std::vector<double>> NormalizeObjectives(
    std::vector<std::vector<double>> per_policy) {
  L2NormalizeColumns(per_policy);
  return per_policy;
}

}  // namespace sraps
