#include "stats/carbon.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sraps {

CarbonIntensityProfile CarbonIntensityProfile::Constant(double kg_per_kwh) {
  return CarbonIntensityProfile(std::vector<double>(24, kg_per_kwh));
}

CarbonIntensityProfile CarbonIntensityProfile::Diurnal(double base, double solar_dip,
                                                       double evening_peak) {
  std::vector<double> hourly(24);
  for (int h = 0; h < 24; ++h) {
    // Solar dip centred on 13:00 with ~4 h half-width.
    const double dip = std::exp(-0.5 * std::pow((h - 13.0) / 3.0, 2.0));
    // Evening peak centred on 19:00, narrower.
    const double peak = std::exp(-0.5 * std::pow((h - 19.0) / 2.0, 2.0));
    double v = base;
    v -= base * (1.0 - solar_dip) * dip;
    v += base * (evening_peak - 1.0) * peak;
    hourly[h] = std::max(0.0, v);
  }
  return CarbonIntensityProfile(std::move(hourly));
}

CarbonIntensityProfile::CarbonIntensityProfile(std::vector<double> hourly)
    : hourly_(std::move(hourly)) {
  if (hourly_.size() != 24) {
    throw std::invalid_argument("CarbonIntensityProfile: need exactly 24 hourly values");
  }
  for (double v : hourly_) {
    if (v < 0.0) {
      throw std::invalid_argument("CarbonIntensityProfile: negative intensity");
    }
  }
}

double CarbonIntensityProfile::At(SimTime t) const {
  const SimTime day_s = ((t % kDay) + kDay) % kDay;
  return hourly_[static_cast<std::size_t>(day_s / kHour)];
}

CarbonReport ComputeCarbon(const TimeSeriesRecorder& recorder,
                           const CarbonIntensityProfile& profile) {
  const Channel& ch = recorder.Get("power_kw");
  if (ch.values.size() < 2) {
    throw std::logic_error("ComputeCarbon: need >= 2 power samples");
  }
  double mean_intensity = 0.0;
  for (double v : profile.hourly()) mean_intensity += v;
  mean_intensity /= 24.0;

  CarbonReport r;
  for (std::size_t i = 1; i < ch.values.size(); ++i) {
    const double dt_h = static_cast<double>(ch.times[i] - ch.times[i - 1]) / 3600.0;
    const double kwh = 0.5 * (ch.values[i] + ch.values[i - 1]) * dt_h;
    const double intensity =
        0.5 * (profile.At(ch.times[i]) + profile.At(ch.times[i - 1]));
    r.energy_kwh += kwh;
    r.emissions_kg += kwh * intensity;
    r.flat_equivalent_kg += kwh * mean_intensity;
  }
  r.timing_factor = r.flat_equivalent_kg > 0.0 ? r.emissions_kg / r.flat_equivalent_kg
                                               : 1.0;
  return r;
}

}  // namespace sraps
