#include "stats/carbon.h"

#include <stdexcept>

namespace sraps {
namespace {

void CheckNonNegative(const std::vector<double>& values) {
  for (double v : values) {
    if (v < 0.0) {
      throw std::invalid_argument("CarbonIntensityProfile: negative intensity");
    }
  }
}

}  // namespace

CarbonIntensityProfile CarbonIntensityProfile::Constant(double kg_per_kwh) {
  return CarbonIntensityProfile(std::vector<double>(24, kg_per_kwh));
}

CarbonIntensityProfile CarbonIntensityProfile::Diurnal(double base, double solar_dip,
                                                       double evening_peak) {
  // GridSignal::Diurnal reproduces the original curve arithmetic exactly.
  return CarbonIntensityProfile(GridSignal::Diurnal(base, solar_dip, evening_peak));
}

CarbonIntensityProfile::CarbonIntensityProfile(std::vector<double> hourly) {
  if (hourly.size() != 24) {
    throw std::invalid_argument(
        "CarbonIntensityProfile: need exactly 24 hourly values");
  }
  CheckNonNegative(hourly);
  signal_ = GridSignal::Hourly(std::move(hourly));
}

CarbonIntensityProfile::CarbonIntensityProfile(GridSignal signal)
    : signal_(std::move(signal)) {
  if (signal_.empty()) {
    throw std::invalid_argument("CarbonIntensityProfile: empty signal");
  }
  CheckNonNegative(signal_.values());
}

const std::vector<double>& CarbonIntensityProfile::hourly() const {
  static const std::vector<double> kEmpty;
  return signal_.period() == kDay ? signal_.values() : kEmpty;
}

CarbonReport ComputeCarbon(const TimeSeriesRecorder& recorder,
                           const CarbonIntensityProfile& profile) {
  const Channel& ch = recorder.Get("power_kw");
  if (ch.values.size() < 2) {
    throw std::logic_error("ComputeCarbon: need >= 2 power samples");
  }
  const double mean_intensity = profile.MeanIntensity();

  CarbonReport r;
  for (std::size_t i = 1; i < ch.values.size(); ++i) {
    const double dt_h = static_cast<double>(ch.times[i] - ch.times[i - 1]) / 3600.0;
    const double kwh = 0.5 * (ch.values[i] + ch.values[i - 1]) * dt_h;
    const double intensity =
        0.5 * (profile.At(ch.times[i]) + profile.At(ch.times[i - 1]));
    r.energy_kwh += kwh;
    r.emissions_kg += kwh * intensity;
    r.flat_equivalent_kg += kwh * mean_intensity;
  }
  r.timing_factor = r.flat_equivalent_kg > 0.0 ? r.emissions_kg / r.flat_equivalent_kg
                                               : 1.0;
  return r;
}

}  // namespace sraps
