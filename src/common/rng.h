// Deterministic random number generation for reproducible experiments.
//
// All stochastic components of the simulator (synthetic dataset generators,
// workload arrival processes, ML bootstrap sampling) draw from this engine so
// that a fixed seed reproduces every figure bit-for-bit, which the paper's
// artifact appendix requires of a faithful reproduction.
#pragma once

#include <cstdint>
#include <vector>

namespace sraps {

/// xoshiro256** — small, fast, high-quality PRNG.  Deliberately not
/// std::mt19937 so the stream is identical across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit draw.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box–Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal: exp(Normal(mu, sigma)).  Job runtimes and node counts in HPC
  /// traces are famously heavy-tailed; log-normal is the canonical fit.
  double LogNormal(double mu, double sigma);

  /// Exponential with the given rate (events per second) — inter-arrival
  /// times of job submissions.
  double Exponential(double rate);

  /// Weibull(shape k, scale lambda) — the original RAPS "reschedule"
  /// redistributed start times with a Weibull; kept for the ablation bench.
  double Weibull(double shape, double scale);

  /// Draws an index in [0, weights.size()) proportionally to weights.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Creates an independent child stream (e.g. one per synthetic job) by
  /// splitting off the current state.
  Rng Split();

 private:
  std::uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sraps
