#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sraps {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[sraps %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace sraps
