#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace sraps {

JsonValue::JsonValue(JsonArray a)
    : type_(Type::kArray), array_(std::make_shared<JsonArray>(std::move(a))) {}

JsonValue::JsonValue(JsonObject o)
    : type_(Type::kObject), object_(std::make_shared<JsonObject>(std::move(o))) {}

bool JsonValue::AsBool() const {
  if (type_ != Type::kBool) throw std::runtime_error("JSON: not a bool");
  return bool_;
}

double JsonValue::AsDouble() const {
  if (type_ != Type::kNumber) throw std::runtime_error("JSON: not a number");
  return number_;
}

std::int64_t JsonValue::AsInt() const {
  return static_cast<std::int64_t>(std::llround(AsDouble()));
}

const std::string& JsonValue::AsString() const {
  if (type_ != Type::kString) throw std::runtime_error("JSON: not a string");
  return string_;
}

const JsonArray& JsonValue::AsArray() const {
  if (type_ != Type::kArray) throw std::runtime_error("JSON: not an array");
  return *array_;
}

const JsonObject& JsonValue::AsObject() const {
  if (type_ != Type::kObject) throw std::runtime_error("JSON: not an object");
  return *object_;
}

const JsonValue& JsonValue::At(const std::string& key) const {
  const auto& obj = AsObject();
  auto it = obj.find(key);
  if (it == obj.end()) throw std::runtime_error("JSON: missing key '" + key + "'");
  return it->second;
}

double JsonValue::GetDouble(const std::string& key, double fallback) const {
  const auto& obj = AsObject();
  auto it = obj.find(key);
  return it == obj.end() ? fallback : it->second.AsDouble();
}

std::int64_t JsonValue::GetInt(const std::string& key, std::int64_t fallback) const {
  const auto& obj = AsObject();
  auto it = obj.find(key);
  return it == obj.end() ? fallback : it->second.AsInt();
}

namespace {

void EscapeTo(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string NumberToString(double d) {
  if (d == std::llround(d) && std::fabs(d) < 1e15) {
    return std::to_string(std::llround(d));
  }
  std::ostringstream ss;
  ss.precision(17);
  ss << d;
  return ss.str();
}

void DumpTo(const JsonValue& v, std::string& out, int indent, int depth);

void Indent(std::string& out, int indent, int depth) {
  if (indent > 0) {
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
  }
}

void DumpTo(const JsonValue& v, std::string& out, int indent, int depth) {
  switch (v.type()) {
    case JsonValue::Type::kNull: out += "null"; break;
    case JsonValue::Type::kBool: out += v.AsBool() ? "true" : "false"; break;
    case JsonValue::Type::kNumber: out += NumberToString(v.AsDouble()); break;
    case JsonValue::Type::kString: EscapeTo(out, v.AsString()); break;
    case JsonValue::Type::kArray: {
      const auto& arr = v.AsArray();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& e : arr) {
        if (!first) out += ',';
        first = false;
        Indent(out, indent, depth + 1);
        DumpTo(e, out, indent, depth + 1);
      }
      Indent(out, indent, depth);
      out += ']';
      break;
    }
    case JsonValue::Type::kObject: {
      const auto& obj = v.AsObject();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : obj) {
        if (!first) out += ',';
        first = false;
        Indent(out, indent, depth + 1);
        EscapeTo(out, key);
        out += indent > 0 ? ": " : ":";
        DumpTo(value, out, indent, depth + 1);
      }
      Indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return JsonValue(ParseString());
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  void ExpectEnd() {
    SkipWs();
    if (pos_ != text_.size()) Fail("trailing characters");
  }

 private:
  [[noreturn]] void Fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at offset " + std::to_string(pos_) +
                             ": " + why);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void Expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonObject obj;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      SkipWs();
      std::string key = ParseString();
      SkipWs();
      Expect(':');
      obj[std::move(key)] = ParseValue();
      SkipWs();
      if (pos_ >= text_.size()) Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return JsonValue(std::move(obj));
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonArray arr;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(ParseValue());
      SkipWs();
      if (pos_ >= text_.size()) Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return JsonValue(std::move(arr));
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) Fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += h - '0';
              else if (h >= 'a' && h <= 'f') code += 10 + h - 'a';
              else if (h >= 'A' && h <= 'F') code += 10 + h - 'A';
              else Fail("bad hex digit");
            }
            // UTF-8 encode the BMP code point (surrogates unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: Fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    Fail("unterminated string");
  }

  JsonValue ParseBool() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return JsonValue(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return JsonValue(false);
    }
    Fail("expected boolean");
  }

  JsonValue ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue();
    }
    Fail("expected null");
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) Fail("malformed number '" + token + "'");
    return JsonValue(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(*this, out, indent, 0);
  return out;
}

JsonValue JsonValue::Parse(const std::string& text) {
  Parser p(text);
  JsonValue v = p.ParseValue();
  p.ExpectEnd();
  return v;
}

}  // namespace sraps
