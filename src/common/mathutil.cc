#include "common/mathutil.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sraps {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return KahanSum(v) / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) throw std::invalid_argument("Percentile: empty input");
  p = Clamp(p, 0.0, 100.0);
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  return Lerp(v[lo], v[hi], rank - static_cast<double>(lo));
}

double Min(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("Min: empty input");
  return *std::min_element(v.begin(), v.end());
}

double Max(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("Max: empty input");
  return *std::max_element(v.begin(), v.end());
}

double KahanSum(const std::vector<double>& v) {
  double sum = 0.0, c = 0.0;
  for (double x : v) {
    const double y = x - c;
    const double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
  return sum;
}

void L2NormalizeColumns(std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return;
  const std::size_t cols = rows.front().size();
  for (const auto& r : rows) {
    if (r.size() != cols) {
      throw std::invalid_argument("L2NormalizeColumns: ragged matrix");
    }
  }
  for (std::size_t c = 0; c < cols; ++c) {
    double norm2 = 0.0;
    for (const auto& r : rows) norm2 += r[c] * r[c];
    const double norm = std::sqrt(norm2);
    if (norm <= 0.0) continue;
    for (auto& r : rows) r[c] /= norm;
  }
}

double Clamp(double x, double lo, double hi) { return std::max(lo, std::min(hi, x)); }

double Lerp(double a, double b, double t) { return a + (b - a) * t; }

bool ApproxEqual(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace sraps
