// Simulation time primitives.
//
// All simulator clocks are integral seconds since the dataset epoch.  A
// dedicated strong alias (rather than std::chrono) keeps trace arithmetic
// trivially serialisable and matches the second-granular telemetry of the
// datasets in Table 1 of the paper (15 s Frontier, 20 s Marconi100, job
// summaries elsewhere).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sraps {

/// Seconds since the dataset epoch (signed: windows may begin before the
/// first trace sample).
using SimTime = std::int64_t;

/// A span of simulated seconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kSecond = 1;
inline constexpr SimDuration kMinute = 60;
inline constexpr SimDuration kHour = 3600;
inline constexpr SimDuration kDay = 86400;

/// Parses a human-friendly duration string as accepted by the paper's CLI
/// (`-ff 35d`, `-t 7d`, `-t 1h`, plain seconds `61000`).  Supported suffixes:
/// s, m, h, d, w.  Returns std::nullopt on malformed input.
std::optional<SimDuration> ParseDuration(const std::string& text);

/// Formats a duration as a compact human-readable string, e.g. "2d 3h 4m 5s".
std::string FormatDuration(SimDuration d);

/// Formats an absolute sim time as "d+HH:MM:SS" relative to the epoch.
std::string FormatTime(SimTime t);

}  // namespace sraps
