// Shared worker-pool primitives.
//
// ParallelIndexFor is the atomic-cursor pool that has always driven the
// sweep and experiment runners (extracted here so every parallel tier uses
// one implementation): workers pull indices from a shared atomic counter, so
// work distribution is load-balanced without any per-item queueing, and —
// because each index is claimed exactly once — a caller whose body writes
// only to index-owned slots stays bit-identical at any thread count.
//
// BoundedThreadPool is the long-lived counterpart the scenario service
// (src/serve/) runs on: a fixed set of workers draining a bounded FIFO task
// queue.  TrySubmit never blocks — a full queue is reported to the caller
// (who turns it into backpressure, e.g. HTTP 503) instead of growing without
// bound.  Shutdown() drains every queued task before joining, which is what
// makes graceful service shutdown ("finish in-flight queries, accept no new
// ones") a one-liner.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sraps {

/// Resolves a requested thread count: 0 means hardware concurrency (min 1),
/// and the result is clamped to `work_items` so no thread starts idle.
unsigned ResolveThreadCount(unsigned requested, std::size_t work_items);

/// Runs body(i) for every i in [0, total) on `threads` workers pulling from
/// one atomic cursor.  threads == 0 uses hardware concurrency; a resolved
/// count of <= 1 runs inline on the calling thread (no spawn).  Exceptions
/// must be handled inside `body`: a throw escaping a worker terminates the
/// process, exactly as it would have in the pre-extraction runners.
void ParallelIndexFor(std::size_t total, unsigned threads,
                      const std::function<void(std::size_t)>& body);

/// Fixed-size worker pool over a bounded FIFO queue.
class BoundedThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency, min 1).  At most
  /// `max_queue` tasks may be queued (not counting those already executing);
  /// max_queue == 0 means unbounded.
  explicit BoundedThreadPool(unsigned threads, std::size_t max_queue = 0);

  /// Drains and joins (Shutdown) if the caller has not already.
  ~BoundedThreadPool();

  BoundedThreadPool(const BoundedThreadPool&) = delete;
  BoundedThreadPool& operator=(const BoundedThreadPool&) = delete;

  /// Enqueues a task.  Returns false — without blocking or running the task
  /// — when the queue is at capacity or the pool is shutting down; the
  /// caller owns the backpressure response.
  bool TrySubmit(std::function<void()> task);

  /// Stops accepting tasks, lets the workers drain everything already
  /// queued, then joins them.  Idempotent.
  void Shutdown();

  /// Tasks queued but not yet picked up by a worker.
  std::size_t QueueDepth() const;

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t max_queue_ = 0;
  bool stopping_ = false;
};

}  // namespace sraps
