// Small numeric helpers shared across the simulator and the statistics layer.
#pragma once

#include <cstddef>
#include <vector>

namespace sraps {

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& v);

/// Population standard deviation; 0 for fewer than two samples.
double StdDev(const std::vector<double>& v);

/// Linear-interpolated percentile, p in [0,100].  Throws on empty input.
double Percentile(std::vector<double> v, double p);

/// Min/Max; throw on empty input.
double Min(const std::vector<double>& v);
double Max(const std::vector<double>& v);

/// Sum with Kahan compensation — power series over multi-day windows sum
/// millions of kW samples and naive accumulation drifts.
double KahanSum(const std::vector<double>& v);

/// Normalises each column of a row-major matrix to unit L2 norm across rows
/// (the transformation behind Fig. 10b's multi-objective radar chart).
/// Zero-norm columns are left untouched.
void L2NormalizeColumns(std::vector<std::vector<double>>& rows);

/// Clamps x to [lo, hi].
double Clamp(double x, double lo, double hi);

/// Linear interpolation at fraction t in [0,1].
double Lerp(double a, double b, double t);

/// true if |a-b| <= tol * max(1, |a|, |b|).
bool ApproxEqual(double a, double b, double tol = 1e-9);

}  // namespace sraps
