#include "common/thread_pool.h"

#include <atomic>
#include <utility>

namespace sraps {

unsigned ResolveThreadCount(unsigned requested, std::size_t work_items) {
  unsigned threads = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (threads > work_items) threads = static_cast<unsigned>(work_items);
  return threads;
}

void ParallelIndexFor(std::size_t total, unsigned threads,
                      const std::function<void(std::size_t)>& body) {
  if (total == 0) return;
  const unsigned resolved = ResolveThreadCount(threads, total);
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (std::size_t i = next.fetch_add(1); i < total; i = next.fetch_add(1)) {
      body(i);
    }
  };
  if (resolved <= 1) {
    worker();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(resolved);
  for (unsigned t = 0; t < resolved; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

BoundedThreadPool::BoundedThreadPool(unsigned threads, std::size_t max_queue)
    : max_queue_(max_queue) {
  unsigned resolved = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (resolved == 0) resolved = 1;
  workers_.reserve(resolved);
  for (unsigned t = 0; t < resolved; ++t) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

BoundedThreadPool::~BoundedThreadPool() { Shutdown(); }

bool BoundedThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    if (max_queue_ != 0 && queue_.size() >= max_queue_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void BoundedThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

std::size_t BoundedThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void BoundedThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      // Drain before exiting: graceful shutdown completes queued work.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace sraps
