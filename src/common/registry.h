// Generic string-keyed component registry — the one plugin mechanism behind
// dataloaders (`--system`), schedulers (`--scheduler`), scheduling policies
// (`--policy`), and backfill strategies (`--backfill`).  Each registry maps a
// CLI-surface name to an entry (usually a factory) plus a one-line
// description, and produces uniform "unknown X ... available: ..." errors so
// every lookup failure tells the user what *would* have worked.
//
// Thread safety: fully guarded by a mutex.  Built-in entries are registered
// once (call_once in the owning module); plugins may register at any time
// before the names are looked up.  `Get` hands out a reference that stays
// valid as long as the entry is not re-registered — in practice registration
// happens at startup and lookups afterwards, including concurrently from
// ExperimentRunner worker threads.
#pragma once

#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace sraps {

template <typename Entry>
class NamedRegistry {
 public:
  /// `kind` names the component class in error messages ("scheduler",
  /// "policy", "backfill strategy", "dataloader").
  explicit NamedRegistry(std::string kind) : kind_(std::move(kind)) {}

  NamedRegistry(const NamedRegistry&) = delete;
  NamedRegistry& operator=(const NamedRegistry&) = delete;

  /// Registers (or replaces — latest registration wins) `name`.
  void Register(const std::string& name, Entry entry, std::string description = "") {
    if (name.empty()) {
      throw std::invalid_argument("NamedRegistry<" + kind_ + ">: empty name");
    }
    std::lock_guard<std::mutex> lock(mu_);
    Slot& slot = entries_[name];
    slot.entry = std::move(entry);
    slot.description = std::move(description);
  }

  bool Has(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.count(name) != 0;
  }

  /// Throws std::invalid_argument listing the registered names.
  const Entry& Get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) throw std::invalid_argument(UnknownMessageLocked(name));
    return it->second.entry;
  }

  /// Registered names in deterministic (lexicographic) order.
  std::vector<std::string> Names() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const auto& [name, slot] : entries_) names.push_back(name);
    return names;
  }

  /// The description given at registration ("" if none / unknown name).
  std::string Description(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    return it == entries_.end() ? std::string() : it->second.description;
  }

  const std::string& kind() const { return kind_; }

  /// The error text Get would throw for `name` (for callers that want to
  /// report without throwing).
  std::string UnknownMessage(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    return UnknownMessageLocked(name);
  }

 private:
  struct Slot {
    Entry entry{};
    std::string description;
  };

  std::string UnknownMessageLocked(const std::string& name) const {
    std::string msg = "unknown " + kind_ + " '" + name + "'";
    msg += " (available: ";
    bool first = true;
    for (const auto& [known, slot] : entries_) {
      if (!first) msg += ", ";
      msg += known;
      first = false;
    }
    msg += entries_.empty() ? "none)" : ")";
    return msg;
  }

  std::string kind_;
  mutable std::mutex mu_;
  std::map<std::string, Slot> entries_;
};

}  // namespace sraps
