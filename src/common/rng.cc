#include "common/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sraps {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("UniformInt: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(NextU64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t draw;
  do {
    draw = NextU64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Exponential: rate must be > 0");
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::Weibull(double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0) {
    throw std::invalid_argument("Weibull: shape and scale must be > 0");
  }
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Categorical: weights sum to zero");
  double draw = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: the final bucket
}

Rng Rng::Split() { return Rng(NextU64()); }

}  // namespace sraps
