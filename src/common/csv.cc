#include "common/csv.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sraps {
namespace {

std::vector<std::vector<std::string>> ParseRows(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // the next field exists even if empty
        break;
      case '\r':
        break;  // swallow; \n ends the row
      case '\n':
        if (!row.empty() || !field.empty() || field_started) end_row();
        break;
      default:
        field += c;
        break;
    }
  }
  if (in_quotes) throw std::runtime_error("CSV: unterminated quoted field");
  if (!row.empty() || !field.empty() || field_started) end_row();
  return rows;
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> header,
                   std::vector<std::vector<std::string>> rows)
    : header_(std::move(header)), rows_(std::move(rows)) {
  for (std::size_t i = 0; i < header_.size(); ++i) index_[header_[i]] = i;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (rows_[r].size() != header_.size()) {
      throw std::runtime_error("CSV: row " + std::to_string(r) + " has " +
                               std::to_string(rows_[r].size()) + " cells, header has " +
                               std::to_string(header_.size()));
    }
  }
}

CsvTable CsvTable::Parse(const std::string& text) {
  auto rows = ParseRows(text);
  if (rows.empty()) throw std::runtime_error("CSV: empty input");
  std::vector<std::string> header = std::move(rows.front());
  rows.erase(rows.begin());
  return CsvTable(std::move(header), std::move(rows));
}

CsvTable CsvTable::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("CSV: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Parse(ss.str());
}

std::optional<std::size_t> CsvTable::ColumnIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& CsvTable::Cell(std::size_t row, std::size_t col) const {
  if (row >= rows_.size() || col >= header_.size()) {
    throw std::out_of_range("CSV: cell out of range");
  }
  return rows_[row][col];
}

const std::string& CsvTable::Cell(std::size_t row, const std::string& column) const {
  auto col = ColumnIndex(column);
  if (!col) throw std::out_of_range("CSV: no column '" + column + "'");
  return Cell(row, *col);
}

std::optional<double> CsvTable::GetDouble(std::size_t row,
                                          const std::string& column) const {
  const std::string& cell = Cell(row, column);
  if (cell.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end != cell.c_str() + cell.size()) {
    throw std::runtime_error("CSV: '" + cell + "' is not a number in column " + column);
  }
  return v;
}

std::optional<std::int64_t> CsvTable::GetInt(std::size_t row,
                                             const std::string& column) const {
  const std::string& cell = Cell(row, column);
  if (cell.empty()) return std::nullopt;
  char* end = nullptr;
  const long long v = std::strtoll(cell.c_str(), &end, 10);
  if (end != cell.c_str() + cell.size()) {
    throw std::runtime_error("CSV: '" + cell + "' is not an integer in column " + column);
  }
  return v;
}

std::string CsvQuote(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvWriter::AddRow(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) out += ',';
    out += CsvQuote(header_[i]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += ',';
      out += CsvQuote(row[i]);
    }
    out += '\n';
  }
  return out;
}

void CsvWriter::Save(const std::string& path) const {
  std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("CsvWriter: cannot write " + path);
  out << ToString();
}

}  // namespace sraps
