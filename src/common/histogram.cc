#include "common/histogram.h"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <stdexcept>

namespace sraps {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.size() < 2) throw std::invalid_argument("Histogram: need >= 2 edges");
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    if (edges_[i] <= edges_[i - 1]) {
      throw std::invalid_argument("Histogram: edges must be strictly increasing");
    }
  }
  counts_.assign(edges_.size() - 1, 0.0);
  labels_.resize(counts_.size());
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    std::ostringstream ss;
    ss << "[" << edges_[i] << "," << edges_[i + 1] << ")";
    labels_[i] = ss.str();
  }
}

Histogram::Histogram(std::vector<double> edges, std::vector<std::string> labels)
    : Histogram(std::move(edges)) {
  if (labels.size() != counts_.size()) {
    throw std::invalid_argument("Histogram: labels.size() must equal bucket count");
  }
  labels_ = std::move(labels);
}

std::size_t Histogram::BucketOf(double value) const {
  if (value < edges_.front() || value >= edges_.back()) return SIZE_MAX;
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  return static_cast<std::size_t>(it - edges_.begin()) - 1;
}

void Histogram::Add(double value, double weight) {
  if (value < edges_.front()) {
    underflow_ += weight;
  } else if (value >= edges_.back()) {
    overflow_ += weight;
  } else {
    counts_[BucketOf(value)] += weight;
  }
}

double Histogram::Total() const {
  double t = underflow_ + overflow_;
  for (double c : counts_) t += c;
  return t;
}

std::string Histogram::ToString() const {
  std::ostringstream ss;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    ss << labels_[i] << ": " << counts_[i] << "\n";
  }
  return ss.str();
}

}  // namespace sraps
