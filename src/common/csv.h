// Minimal CSV reading/writing used by the dataloaders and output recorders.
//
// The paper's artifacts consume parquet; offline we standardise on CSV with
// identical column names so every dataloader exercises the same parsing,
// validation, and unit-handling logic the real loaders need.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sraps {

/// One parsed CSV table: a header and row-major cells.
class CsvTable {
 public:
  CsvTable() = default;
  CsvTable(std::vector<std::string> header, std::vector<std::vector<std::string>> rows);

  /// Parses CSV text.  Handles quoted fields with embedded commas/quotes and
  /// both \n and \r\n line endings.  Throws std::runtime_error on ragged rows.
  static CsvTable Parse(const std::string& text);

  /// Reads and parses a CSV file.  Throws std::runtime_error if unreadable.
  static CsvTable Load(const std::string& path);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  /// Column index for a header name; nullopt if absent.
  std::optional<std::size_t> ColumnIndex(const std::string& name) const;

  /// Raw cell access (bounds-checked).
  const std::string& Cell(std::size_t row, std::size_t col) const;
  const std::string& Cell(std::size_t row, const std::string& column) const;

  /// Typed accessors.  Empty cells yield nullopt; malformed cells throw.
  std::optional<double> GetDouble(std::size_t row, const std::string& column) const;
  std::optional<std::int64_t> GetInt(std::size_t row, const std::string& column) const;

 private:
  std::vector<std::string> header_;
  std::map<std::string, std::size_t> index_;
  std::vector<std::vector<std::string>> rows_;
};

/// Streaming CSV writer with RFC-4180 quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Serialises the table (header + rows) to a string.
  std::string ToString() const;

  /// Writes to a file, creating parent directories if needed.
  void Save(const std::string& path) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quotes a single CSV field if it contains a comma, quote, or newline.
std::string CsvQuote(const std::string& field);

}  // namespace sraps
