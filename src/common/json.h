// Minimal JSON value, writer, and recursive-descent parser.  The simulator
// round-trips accounts.json (artifact workflow §4.3) and emits stats.out in
// JSON; a dependency-free subset (objects, arrays, strings, numbers, bools,
// null) is all that requires.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sraps {

class JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}                      // NOLINT
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}                // NOLINT
  JsonValue(int i) : type_(Type::kNumber), number_(i) {}                   // NOLINT
  JsonValue(std::int64_t i)                                                // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}           // NOLINT
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  JsonValue(JsonArray a);                                                  // NOLINT
  JsonValue(JsonObject o);                                                 // NOLINT

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  /// Typed access; throws std::runtime_error on type mismatch.
  bool AsBool() const;
  double AsDouble() const;
  std::int64_t AsInt() const;
  const std::string& AsString() const;
  const JsonArray& AsArray() const;
  const JsonObject& AsObject() const;

  /// Object member access; throws if not an object or key missing.
  const JsonValue& At(const std::string& key) const;
  /// Object member or fallback if missing (still throws if not an object).
  double GetDouble(const std::string& key, double fallback) const;
  std::int64_t GetInt(const std::string& key, std::int64_t fallback) const;

  /// Serialises with 2-space indentation and deterministic key order.
  std::string Dump(int indent = 0) const;

  /// Parses JSON text; throws std::runtime_error with position info.
  static JsonValue Parse(const std::string& text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

}  // namespace sraps
