#include "common/time.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace sraps {

std::optional<SimDuration> ParseDuration(const std::string& text) {
  if (text.empty()) return std::nullopt;
  SimDuration total = 0;
  std::size_t i = 0;
  bool any = false;
  while (i < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
      continue;
    }
    std::size_t start = i;
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
    if (i == start) return std::nullopt;  // no digits where a number is required
    SimDuration value = 0;
    for (std::size_t k = start; k < i; ++k) value = value * 10 + (text[k] - '0');
    SimDuration unit = kSecond;
    if (i < text.size()) {
      switch (std::tolower(static_cast<unsigned char>(text[i]))) {
        case 's': unit = kSecond; ++i; break;
        case 'm': unit = kMinute; ++i; break;
        case 'h': unit = kHour; ++i; break;
        case 'd': unit = kDay; ++i; break;
        case 'w': unit = 7 * kDay; ++i; break;
        default: return std::nullopt;
      }
    }
    total += value * unit;
    any = true;
  }
  if (!any) return std::nullopt;
  return total;
}

std::string FormatDuration(SimDuration d) {
  if (d == 0) return "0s";
  std::string out;
  if (d < 0) {
    out += "-";
    d = -d;
  }
  const SimDuration days = d / kDay;
  const SimDuration hours = (d % kDay) / kHour;
  const SimDuration minutes = (d % kHour) / kMinute;
  const SimDuration seconds = d % kMinute;
  char buf[32];
  if (days) {
    std::snprintf(buf, sizeof buf, "%lldd ", static_cast<long long>(days));
    out += buf;
  }
  if (hours) {
    std::snprintf(buf, sizeof buf, "%lldh ", static_cast<long long>(hours));
    out += buf;
  }
  if (minutes) {
    std::snprintf(buf, sizeof buf, "%lldm ", static_cast<long long>(minutes));
    out += buf;
  }
  if (seconds) {
    std::snprintf(buf, sizeof buf, "%llds ", static_cast<long long>(seconds));
    out += buf;
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string FormatTime(SimTime t) {
  const bool neg = t < 0;
  SimTime a = neg ? -t : t;
  const SimTime days = a / kDay;
  const SimTime h = (a % kDay) / kHour;
  const SimTime m = (a % kHour) / kMinute;
  const SimTime s = a % kMinute;
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s%lld+%02lld:%02lld:%02lld", neg ? "-" : "",
                static_cast<long long>(days), static_cast<long long>(h),
                static_cast<long long>(m), static_cast<long long>(s));
  return buf;
}

}  // namespace sraps
