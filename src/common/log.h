// Tiny leveled logger.  The simulator is a library first: logging defaults to
// warnings-only so tests and benches stay quiet, and the examples turn on
// info-level progress output.
#pragma once

#include <sstream>
#include <string>

namespace sraps {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level (default kWarn).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes one line to stderr if `level` passes the filter.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, ss_.str()); }
  template <typename T>
  LogStream& operator<<(const T& value) {
    ss_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

}  // namespace internal
}  // namespace sraps

#define SRAPS_LOG_DEBUG ::sraps::internal::LogStream(::sraps::LogLevel::kDebug)
#define SRAPS_LOG_INFO ::sraps::internal::LogStream(::sraps::LogLevel::kInfo)
#define SRAPS_LOG_WARN ::sraps::internal::LogStream(::sraps::LogLevel::kWarn)
#define SRAPS_LOG_ERROR ::sraps::internal::LogStream(::sraps::LogLevel::kError)
