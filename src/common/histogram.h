// Fixed-edge histogram used by the systems-accounting layer (e.g. the
// small/medium/large job-size histogram of §3.2.6).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sraps {

class Histogram {
 public:
  /// Edges must be strictly increasing; bucket i covers [edges[i], edges[i+1]).
  /// Values below the first edge land in an underflow bucket, values at or
  /// above the last edge in an overflow bucket.
  explicit Histogram(std::vector<double> edges);

  /// Convenience: labelled buckets, e.g. {"small","medium","large"} with
  /// edges {0, 128, 1024, 1e12}.  labels.size() must equal edges.size()-1.
  Histogram(std::vector<double> edges, std::vector<std::string> labels);

  void Add(double value, double weight = 1.0);

  std::size_t num_buckets() const { return counts_.size(); }
  double Count(std::size_t bucket) const { return counts_.at(bucket); }
  double CountUnderflow() const { return underflow_; }
  double CountOverflow() const { return overflow_; }
  double Total() const;

  const std::vector<double>& edges() const { return edges_; }
  const std::vector<std::string>& labels() const { return labels_; }

  /// Bucket index for a value, or SIZE_MAX for under/overflow.
  std::size_t BucketOf(double value) const;

  /// "label: count" lines, one per bucket.
  std::string ToString() const;

 private:
  std::vector<double> edges_;
  std::vector<std::string> labels_;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
};

}  // namespace sraps
