// Self-contained HTML report generation — the role of ExaDigiT's third
// module, the "visual analytics model", in offline form: one .html file
// with inline SVG charts of the recorded time series (power, utilisation,
// PUE, temperatures, queue depth) and the systems-accounting tables, so a
// simulation run can be inspected without any plotting stack.
#pragma once

#include <string>
#include <vector>

#include "stats/stats.h"
#include "telemetry/recorder.h"

namespace sraps {

struct ReportOptions {
  std::string title = "sraps simulation report";
  int chart_width = 900;
  int chart_height = 220;
  /// Channels to chart, in order; missing channels are skipped silently.
  std::vector<std::string> channels = {"power_kw",  "it_power_kw", "utilization",
                                       "price_usd_per_kwh", "carbon_kg_per_kwh",
                                       "nodes_asleep", "avg_freq_scale",
                                       "pue",       "tower_return_c",
                                       "max_inlet_c", "thermal_leak_kw",
                                       "cdu_spread_c",
                                       "queue_length", "running_jobs"};
  /// Render a combined power-vs-price timeline (both series min-max
  /// normalised onto one axis) when the run recorded a price signal — shows
  /// at a glance whether load sat in cheap windows.
  bool price_overlay = true;
};

/// One labelled series for comparison charts (e.g. per-policy overlays).
struct NamedSeries {
  std::string label;
  std::vector<SimTime> times;
  std::vector<double> values;
};

/// Renders an SVG line chart (axes, ticks, labels, one polyline per series).
/// Exposed for tests and for callers composing their own pages.
std::string RenderSvgChart(const std::vector<NamedSeries>& series,
                           const std::string& title, int width, int height);

/// Renders the per-rack inlet-temperature heatmap of a thermal-topology run:
/// one row per `rack<r>_inlet_c` channel (rack 0 at the top), time along x,
/// colour from coolest (blue) to hottest (red) across the run's range.
/// Returns an empty string when the recorder holds no rack channels, so
/// callers can splice it in unconditionally.  Exposed for tests.
std::string RenderRackInletHeatmap(const TimeSeriesRecorder& recorder,
                                   int width = 900, int height = 220);

/// Full single-run report: charts for the configured channels + stats table.
/// Thermal-topology runs additionally get the per-rack inlet heatmap.
std::string RenderHtmlReport(const TimeSeriesRecorder& recorder,
                             const SimulationStats& stats,
                             const ReportOptions& options = {});

/// Comparison report: one chart per channel with one line per run — the
/// layout of the paper's figures (replay vs reschedule overlays).
std::string RenderComparisonReport(
    const std::vector<std::pair<std::string, const TimeSeriesRecorder*>>& runs,
    const ReportOptions& options = {});

/// Convenience: write text to a file, creating directories.
void WriteReportFile(const std::string& path, const std::string& html);

}  // namespace sraps
