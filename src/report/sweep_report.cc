#include "report/sweep_report.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sraps {
namespace {

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string Round(double v, int digits = 2) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(digits);
  ss << v;
  return ss.str();
}

double NiceStep(double range) {
  if (range <= 0) return 1.0;
  const double raw = range / 5.0;
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  const double norm = raw / mag;
  if (norm < 1.5) return mag;
  if (norm < 3.5) return 2.0 * mag;
  if (norm < 7.5) return 5.0 * mag;
  return 10.0 * mag;
}

/// Scatter of scenarios in (energy MWh, makespan h); frontier points in the
/// warning colour, joined by a step line.
std::string RenderParetoScatter(const SweepAggregates& agg, int width, int height) {
  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << width << "' height='"
      << height << "' font-family='sans-serif' font-size='11'>\n";
  svg << "<text x='56' y='16' font-size='13' font-weight='bold'>"
      << "energy vs makespan (" << agg.points.size() << " scenarios, "
      << agg.pareto.size() << " on frontier)</text>\n";
  if (agg.points.empty()) {
    svg << "<text x='56' y='40'>(no completed scenarios)</text>\n</svg>\n";
    return svg.str();
  }

  const auto mwh = [](double j) { return j / 3.6e9; };
  const auto hours = [](double s) { return s / 3600.0; };
  double x_min = mwh(agg.points.front().total_energy_j), x_max = x_min;
  double y_min = hours(agg.points.front().makespan_s), y_max = y_min;
  for (const SweepPoint& p : agg.points) {
    x_min = std::min(x_min, mwh(p.total_energy_j));
    x_max = std::max(x_max, mwh(p.total_energy_j));
    y_min = std::min(y_min, hours(p.makespan_s));
    y_max = std::max(y_max, hours(p.makespan_s));
  }
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;
  const double x_pad = (x_max - x_min) * 0.05, y_pad = (y_max - y_min) * 0.05;
  x_min -= x_pad;
  x_max += x_pad;
  y_min -= y_pad;
  y_max += y_pad;

  const int ml = 56, mr = 16, mt = 28, mb = 40;
  const double pw = width - ml - mr, ph = height - mt - mb;
  auto x_of = [&](double x) { return ml + (x - x_min) / (x_max - x_min) * pw; };
  auto y_of = [&](double y) { return mt + ph - (y - y_min) / (y_max - y_min) * ph; };

  svg << "<rect x='" << ml << "' y='" << mt << "' width='" << pw << "' height='" << ph
      << "' fill='none' stroke='#999'/>\n";
  const double xstep = NiceStep(x_max - x_min);
  for (double x = std::ceil(x_min / xstep) * xstep; x <= x_max; x += xstep) {
    svg << "<text x='" << x_of(x) << "' y='" << (mt + ph + 16)
        << "' text-anchor='middle'>" << Round(x, xstep < 1 ? 2 : 0) << "</text>\n";
  }
  const double ystep = NiceStep(y_max - y_min);
  for (double y = std::ceil(y_min / ystep) * ystep; y <= y_max; y += ystep) {
    svg << "<text x='" << (ml - 6) << "' y='" << (y_of(y) + 4)
        << "' text-anchor='end'>" << Round(y, ystep < 1 ? 2 : 0) << "</text>\n";
  }
  svg << "<text x='" << (ml + pw / 2) << "' y='" << (mt + ph + 32)
      << "' text-anchor='middle'>energy [MWh]</text>\n";
  svg << "<text x='14' y='" << (mt + ph / 2)
      << "' text-anchor='middle' transform='rotate(-90 14 " << (mt + ph / 2)
      << ")'>makespan [h]</text>\n";

  for (const SweepPoint& p : agg.points) {
    if (p.on_frontier) continue;
    svg << "<circle cx='" << x_of(mwh(p.total_energy_j)) << "' cy='"
        << y_of(hours(p.makespan_s))
        << "' r='2.5' fill='#0072B2' fill-opacity='0.35'/>\n";
  }
  if (!agg.pareto.empty()) {
    svg << "<polyline fill='none' stroke='#D55E00' stroke-width='1.5' points='";
    for (const ParetoPoint& p : agg.pareto) {
      svg << x_of(mwh(p.total_energy_j)) << "," << y_of(hours(p.makespan_s)) << " ";
    }
    svg << "'/>\n";
    for (const ParetoPoint& p : agg.pareto) {
      svg << "<circle cx='" << x_of(mwh(p.total_energy_j)) << "' cy='"
          << y_of(hours(p.makespan_s)) << "' r='4' fill='#D55E00'><title>"
          << Escape(p.name) << "</title></circle>\n";
    }
  }
  svg << "</svg>\n";
  return svg.str();
}

}  // namespace

std::string RenderSweepReport(const SweepSpec& spec, const SweepAggregates& agg,
                              const TreeStats* tree) {
  std::ostringstream html;
  html << "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>\n<title>"
       << Escape(spec.name) << " — sweep report</title>\n<style>\n"
       << "body{font-family:sans-serif;margin:24px;color:#222}\n"
       << "table{border-collapse:collapse;margin:12px 0}\n"
       << "th,td{border:1px solid #ccc;padding:4px 10px;text-align:right}\n"
       << "th{background:#f4f4f4}\ntd:first-child,th:first-child{text-align:left}\n"
       << "</style></head><body>\n";
  html << "<h1>" << Escape(spec.name) << "</h1>\n";
  html << "<p>" << agg.total << " scenarios (" << agg.ok_count << " ok, "
       << agg.failed_count << " failed) over " << spec.axes.size()
       << " axes; base system <b>" << Escape(spec.base.system) << "</b>, scheduler <b>"
       << Escape(spec.base.scheduler) << "</b>, policy <b>" << Escape(spec.base.policy)
       << "</b>.</p>\n";

  html << "<h2>Axes</h2>\n<table><tr><th>key</th><th>values</th></tr>\n";
  for (const SweepAxis& axis : spec.axes) {
    std::string values;
    for (const JsonValue& v : axis.values) {
      if (!values.empty()) values += ", ";
      values += v.is_string() ? v.AsString() : v.Dump(0);
    }
    html << "<tr><td>" << Escape(axis.key) << "</td><td>" << Escape(values)
         << "</td></tr>\n";
  }
  html << "</table>\n";

  html << "<h2>Aggregates</h2>\n<table><tr><th>metric</th><th>mean</th><th>min</th>"
       << "<th>p50</th><th>p90</th><th>p99</th><th>max</th></tr>\n";
  for (const auto& [name, s] : agg.metrics) {
    html << "<tr><td>" << Escape(name) << "</td><td>" << Round(s.mean) << "</td><td>"
         << Round(s.min) << "</td><td>" << Round(s.p50) << "</td><td>" << Round(s.p90)
         << "</td><td>" << Round(s.p99) << "</td><td>" << Round(s.max)
         << "</td></tr>\n";
  }
  html << "</table>\n";

  if (tree != nullptr) {
    html << "<h2>Snapshot-tree execution</h2>\n"
         << "<p>" << tree->scenarios << " scenarios answered by "
         << tree->roots << " shared trajectories (+" << tree->probe_runs
         << " cap probes); " << tree->forks << " forks, max depth "
         << tree->max_depth << ", max fan-out " << tree->max_fanout << ".";
    if (tree->fallback_scenarios > 0) {
      html << " " << tree->fallback_scenarios
           << " scenarios fell back to plain runs.";
    }
    html << "</p>\n<p>Simulated " << Round(tree->sim_seconds_stepped / 3600.0, 1)
         << " h of machine time vs " << Round(tree->sim_seconds_plain / 3600.0, 1)
         << " h for plain execution — <b>" << Round(100.0 * tree->SavedFraction(), 1)
         << "%</b> saved. Results are bit-identical to the plain path.</p>\n";
  }

  html << "<h2>Pareto frontier</h2>\n" << RenderParetoScatter(agg, 760, 420) << "\n";
  html << "<table><tr><th>scenario</th><th>energy [MWh]</th><th>makespan [h]</th></tr>\n";
  for (const ParetoPoint& p : agg.pareto) {
    html << "<tr><td>" << Escape(p.name) << "</td><td>"
         << Round(p.total_energy_j / 3.6e9, 3) << "</td><td>"
         << Round(p.makespan_s / 3600.0, 2) << "</td></tr>\n";
  }
  html << "</table>\n</body></html>\n";
  return html.str();
}

}  // namespace sraps
