// Sweep report: one self-contained HTML page summarising a SweepRunner run —
// the grid definition, the per-metric aggregate table, and an SVG scatter of
// every scenario in the (energy, makespan) plane with the Pareto frontier
// highlighted — so a thousand-scenario sweep can be triaged without loading
// the row shards into a plotting stack.
#pragma once

#include <string>

#include "sweep/sweep_runner.h"
#include "sweep/sweep_spec.h"

namespace sraps {

/// Renders the report from the spec (axis table) and the finalized
/// aggregates (metric summaries, Pareto frontier, scatter points).
std::string RenderSweepReport(const SweepSpec& spec, const SweepAggregates& agg);

}  // namespace sraps
