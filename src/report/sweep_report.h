// Sweep report: one self-contained HTML page summarising a SweepRunner run —
// the grid definition, the per-metric aggregate table, and an SVG scatter of
// every scenario in the (energy, makespan) plane with the Pareto frontier
// highlighted — so a thousand-scenario sweep can be triaged without loading
// the row shards into a plotting stack.
#pragma once

#include <string>

#include "sweep/sweep_runner.h"
#include "sweep/sweep_spec.h"
#include "sweep/tree/tree_stats.h"

namespace sraps {

/// Renders the report from the spec (axis table) and the finalized
/// aggregates (metric summaries, Pareto frontier, scatter points).  When
/// `tree` is non-null (the sweep ran with --sweep-tree and the tree
/// engaged), an execution section reports the fork structure and the
/// simulated-time saving; the scientific sections are unaffected — tree
/// execution never changes results, only how they were computed.
std::string RenderSweepReport(const SweepSpec& spec, const SweepAggregates& agg,
                              const TreeStats* tree = nullptr);

}  // namespace sraps
