#include "report/html_report.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/time.h"

namespace sraps {
namespace {

// Distinguishable line colours (colour-blind-safe palette).
const char* kPalette[] = {"#0072B2", "#D55E00", "#009E73", "#CC79A7",
                          "#E69F00", "#56B4E9", "#000000"};

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string Round(double v, int digits = 2) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(digits);
  ss << v;
  return ss.str();
}

// "Nice" tick step: 1/2/5 * 10^k covering the range in <= 6 ticks.
double NiceStep(double range) {
  if (range <= 0) return 1.0;
  const double raw = range / 5.0;
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  const double norm = raw / mag;
  if (norm < 1.5) return mag;
  if (norm < 3.5) return 2.0 * mag;
  if (norm < 7.5) return 5.0 * mag;
  return 10.0 * mag;
}

}  // namespace

std::string RenderSvgChart(const std::vector<NamedSeries>& series,
                           const std::string& title, int width, int height) {
  if (width < 100 || height < 80) {
    throw std::invalid_argument("RenderSvgChart: chart too small");
  }
  // Extents.
  bool any = false;
  double t_min = 0, t_max = 1, v_min = 0, v_max = 1;
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.times.size(); ++i) {
      const double t = static_cast<double>(s.times[i]);
      const double v = s.values[i];
      if (!any) {
        t_min = t_max = t;
        v_min = v_max = v;
        any = true;
      }
      t_min = std::min(t_min, t);
      t_max = std::max(t_max, t);
      v_min = std::min(v_min, v);
      v_max = std::max(v_max, v);
    }
  }
  if (!any) {
    return "<svg xmlns='http://www.w3.org/2000/svg' width='" + std::to_string(width) +
           "' height='" + std::to_string(height) + "'><text x='10' y='20'>" +
           Escape(title) + " (no data)</text></svg>";
  }
  if (v_max == v_min) v_max = v_min + 1.0;
  if (t_max == t_min) t_max = t_min + 1.0;
  // Pad the value range 5 %.
  const double pad = (v_max - v_min) * 0.05;
  v_min -= pad;
  v_max += pad;

  const int ml = 64, mr = 120, mt = 28, mb = 34;  // margins (right: legend)
  const double pw = width - ml - mr, ph = height - mt - mb;
  auto x_of = [&](double t) { return ml + (t - t_min) / (t_max - t_min) * pw; };
  auto y_of = [&](double v) { return mt + ph - (v - v_min) / (v_max - v_min) * ph; };

  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << width << "' height='"
      << height << "' font-family='sans-serif' font-size='11'>\n";
  svg << "<text x='" << ml << "' y='16' font-size='13' font-weight='bold'>"
      << Escape(title) << "</text>\n";
  // Frame.
  svg << "<rect x='" << ml << "' y='" << mt << "' width='" << pw << "' height='" << ph
      << "' fill='none' stroke='#999'/>\n";
  // Y ticks.
  const double vstep = NiceStep(v_max - v_min);
  for (double v = std::ceil(v_min / vstep) * vstep; v <= v_max; v += vstep) {
    const double y = y_of(v);
    svg << "<line x1='" << ml << "' y1='" << y << "' x2='" << (ml + pw) << "' y2='" << y
        << "' stroke='#eee'/>\n";
    svg << "<text x='" << (ml - 6) << "' y='" << (y + 4)
        << "' text-anchor='end'>" << Round(v, vstep < 1 ? 2 : 0) << "</text>\n";
  }
  // X ticks (hours).
  const double span_h = (t_max - t_min) / 3600.0;
  const double hstep = NiceStep(span_h);
  for (double h = 0; h <= span_h; h += hstep) {
    const double x = x_of(t_min + h * 3600.0);
    svg << "<line x1='" << x << "' y1='" << (mt + ph) << "' x2='" << x << "' y2='"
        << (mt + ph + 4) << "' stroke='#999'/>\n";
    svg << "<text x='" << x << "' y='" << (mt + ph + 16) << "' text-anchor='middle'>"
        << Round(h, 0) << "h</text>\n";
  }
  // Series.
  for (std::size_t s = 0; s < series.size(); ++s) {
    const char* colour = kPalette[s % (sizeof kPalette / sizeof *kPalette)];
    std::ostringstream points;
    for (std::size_t i = 0; i < series[s].times.size(); ++i) {
      points << Round(x_of(static_cast<double>(series[s].times[i])), 1) << ","
             << Round(y_of(series[s].values[i]), 1) << " ";
    }
    svg << "<polyline fill='none' stroke='" << colour << "' stroke-width='1.3' points='"
        << points.str() << "'/>\n";
    // Legend.
    const double ly = mt + 14.0 * static_cast<double>(s);
    svg << "<line x1='" << (ml + pw + 8) << "' y1='" << ly + 8 << "' x2='"
        << (ml + pw + 28) << "' y2='" << ly + 8 << "' stroke='" << colour
        << "' stroke-width='2'/>\n";
    svg << "<text x='" << (ml + pw + 32) << "' y='" << (ly + 12) << "'>"
        << Escape(series[s].label) << "</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

namespace {

std::string StatsTable(const SimulationStats& stats) {
  const JsonValue j = stats.ToJson();
  std::ostringstream html;
  html << "<table border='0' cellpadding='4' style='border-collapse:collapse'>\n";
  html << "<tr style='background:#eee'><th align='left'>metric</th>"
          "<th align='right'>value</th></tr>\n";
  for (const auto& [key, value] : j.AsObject()) {
    if (value.is_object()) continue;  // histogram rendered separately
    html << "<tr><td>" << Escape(key) << "</td><td align='right'>";
    if (value.is_number()) {
      html << Round(value.AsDouble(), 3);
    } else {
      html << Escape(value.Dump());
    }
    html << "</td></tr>\n";
  }
  html << "</table>\n";
  const Histogram& h = stats.JobSizeHistogram();
  html << "<p>job sizes: ";
  for (std::size_t i = 0; i < h.num_buckets(); ++i) {
    if (i) html << ", ";
    html << Escape(h.labels()[i]) << "=" << Round(h.Count(i), 0);
  }
  html << "</p>\n";
  return html.str();
}

std::string PageHead(const std::string& title) {
  return "<!DOCTYPE html>\n<html><head><meta charset='utf-8'><title>" + Escape(title) +
         "</title></head>\n<body style='font-family:sans-serif;max-width:1100px;"
         "margin:auto'>\n<h1>" +
         Escape(title) + "</h1>\n";
}

}  // namespace

namespace {

/// Min-max normalises a channel onto [0, 1] (flat series map to 0.5) so two
/// series with wildly different units share one overlay axis.
NamedSeries NormalisedSeries(const std::string& label, const Channel& ch) {
  NamedSeries s{label, ch.times, ch.values};
  if (s.values.empty()) return s;
  double lo = s.values.front(), hi = s.values.front();
  for (double v : s.values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = hi - lo;
  for (double& v : s.values) v = range > 0.0 ? (v - lo) / range : 0.5;
  return s;
}

}  // namespace

std::string RenderRackInletHeatmap(const TimeSeriesRecorder& recorder, int width,
                                   int height) {
  // Collect the contiguous rack channels the engine records for a thermal
  // topology ("rack0_inlet_c", "rack1_inlet_c", ...).
  std::vector<const Channel*> racks;
  for (int r = 0;; ++r) {
    const std::string name = "rack" + std::to_string(r) + "_inlet_c";
    if (!recorder.Has(name)) break;
    racks.push_back(&recorder.Get(name));
  }
  if (racks.empty() || racks.front()->values.empty()) return "";
  if (width < 100 || height < 80) {
    throw std::invalid_argument("RenderRackInletHeatmap: chart too small");
  }

  // Value range across every rack, for one shared colour scale.
  double lo = racks.front()->values.front(), hi = lo;
  for (const Channel* ch : racks) {
    for (double v : ch->values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (hi == lo) hi = lo + 1.0;

  // Bin samples along time so machine-scale runs stay a bounded SVG: each
  // cell is the mean of its bin (all rack channels share one time base).
  const std::size_t samples = racks.front()->values.size();
  const std::size_t cols = std::min<std::size_t>(samples, 160);
  const int ml = 64, mr = 96, mt = 28, mb = 34;
  const double pw = width - ml - mr;
  const double ph = height - mt - mb;
  const double cell_w = pw / static_cast<double>(cols);
  const double cell_h = ph / static_cast<double>(racks.size());

  // Cool inlets render blue (#2166AC), hot ones red (#B2182B).
  auto colour = [&](double v) {
    const double f = (v - lo) / (hi - lo);
    const int r = static_cast<int>(0x21 + f * (0xB2 - 0x21));
    const int g = static_cast<int>(0x66 + f * (0x18 - 0x66));
    const int b = static_cast<int>(0xAC + f * (0x2B - 0xAC));
    std::ostringstream c;
    c << "#" << std::hex;
    for (int x : {r, g, b}) c << (x < 16 ? "0" : "") << x;
    return c.str();
  };

  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << width << "' height='"
      << height << "' font-family='sans-serif' font-size='11'>\n";
  svg << "<text x='" << ml << "' y='16' font-size='13' font-weight='bold'>"
      << "per-rack inlet temperature (&#176;C)</text>\n";
  for (std::size_t r = 0; r < racks.size(); ++r) {
    const std::vector<double>& values = racks[r]->values;
    const double y = mt + cell_h * static_cast<double>(r);
    svg << "<text x='" << (ml - 6) << "' y='" << (y + cell_h / 2 + 4)
        << "' text-anchor='end'>r" << r << "</text>\n";
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t begin = c * samples / cols;
      const std::size_t end = std::max(begin + 1, (c + 1) * samples / cols);
      double sum = 0.0;
      for (std::size_t i = begin; i < end && i < values.size(); ++i) sum += values[i];
      const double mean = sum / static_cast<double>(end - begin);
      svg << "<rect x='" << Round(ml + cell_w * static_cast<double>(c), 1) << "' y='"
          << Round(y, 1) << "' width='" << Round(cell_w + 0.5, 1) << "' height='"
          << Round(cell_h + 0.5, 1) << "' fill='" << colour(mean) << "'/>\n";
    }
  }
  // Colour-scale legend: the range endpoints.
  svg << "<rect x='" << (ml + pw + 8) << "' y='" << mt
      << "' width='14' height='14' fill='" << colour(hi) << "'/>\n";
  svg << "<text x='" << (ml + pw + 26) << "' y='" << (mt + 11) << "'>"
      << Round(hi, 1) << "</text>\n";
  svg << "<rect x='" << (ml + pw + 8) << "' y='" << (mt + ph - 14)
      << "' width='14' height='14' fill='" << colour(lo) << "'/>\n";
  svg << "<text x='" << (ml + pw + 26) << "' y='" << (mt + ph - 3) << "'>"
      << Round(lo, 1) << "</text>\n";
  svg << "</svg>\n";
  return svg.str();
}

std::string RenderHtmlReport(const TimeSeriesRecorder& recorder,
                             const SimulationStats& stats,
                             const ReportOptions& options) {
  std::ostringstream html;
  html << PageHead(options.title);
  for (const std::string& channel : options.channels) {
    if (!recorder.Has(channel)) continue;
    const Channel& ch = recorder.Get(channel);
    NamedSeries s{channel, ch.times, ch.values};
    html << RenderSvgChart({s}, channel, options.chart_width, options.chart_height);
  }
  if (options.price_overlay && recorder.Has("power_kw") &&
      recorder.Has("price_usd_per_kwh")) {
    const std::vector<NamedSeries> overlay = {
        NormalisedSeries("power_kw", recorder.Get("power_kw")),
        NormalisedSeries("price", recorder.Get("price_usd_per_kwh"))};
    html << RenderSvgChart(overlay, "power vs grid price (normalised)",
                           options.chart_width, options.chart_height);
  }
  const std::string heatmap =
      RenderRackInletHeatmap(recorder, options.chart_width, options.chart_height);
  if (!heatmap.empty()) html << heatmap;
  html << "<h2>systems accounting</h2>\n" << StatsTable(stats);
  html << "</body></html>\n";
  return html.str();
}

std::string RenderComparisonReport(
    const std::vector<std::pair<std::string, const TimeSeriesRecorder*>>& runs,
    const ReportOptions& options) {
  std::ostringstream html;
  html << PageHead(options.title);
  for (const std::string& channel : options.channels) {
    std::vector<NamedSeries> series;
    for (const auto& [label, recorder] : runs) {
      if (!recorder->Has(channel)) continue;
      const Channel& ch = recorder->Get(channel);
      series.push_back({label, ch.times, ch.values});
    }
    if (series.empty()) continue;
    html << RenderSvgChart(series, channel, options.chart_width, options.chart_height);
  }
  html << "</body></html>\n";
  return html.str();
}

void WriteReportFile(const std::string& path, const std::string& html) {
  std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("WriteReportFile: cannot write " + path);
  out << html;
}

}  // namespace sraps
