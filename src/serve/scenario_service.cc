#include "serve/scenario_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/mathutil.h"
#include "core/simulation.h"
#include "core/simulation_builder.h"
#include "experiment/experiment_runner.h"
#include "sched/policies.h"

namespace sraps {
namespace {

constexpr std::size_t kLatencyWindow = 8192;

std::uint64_t Fnv64Str(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string HexFingerprint(std::uint64_t fp) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(fp));
  return buf;
}

ServeReply ErrorReply(int status, const std::string& message, int retry_after = 0) {
  JsonObject o;
  o["error"] = message;
  return ServeReply{status, JsonValue(std::move(o)).Dump(2) + "\n", retry_after};
}

/// Canonical spec JSON with the grid block removed — the patch guard compares
/// these to prove a query only varied the grid.
std::string DumpSansGrid(const ScenarioSpec& spec) {
  JsonObject o = spec.ToJson().AsObject();
  o.erase("grid");
  return JsonValue(std::move(o)).Dump(0);
}

/// Names the first non-grid key a patch changed, for an actionable 400.
std::string FirstChangedKey(const std::string& before_json,
                            const std::string& after_json) {
  const JsonObject before = JsonValue::Parse(before_json).AsObject();
  const JsonObject after = JsonValue::Parse(after_json).AsObject();
  for (const auto& [key, value] : after) {
    auto it = before.find(key);
    if (it == before.end() || it->second.Dump(0) != value.Dump(0)) return key;
  }
  for (const auto& [key, value] : before) {
    if (after.find(key) == after.end()) return key;
  }
  return "<unknown>";
}

}  // namespace

ScenarioService::ScenarioService(ServeOptions options)
    : options_(options),
      cache_(options.cache_bytes),
      pool_(options.workers, options.max_queue) {}

ScenarioService::~ScenarioService() { Stop(); }

void ScenarioService::AddBase(ScenarioSpec spec) {
  if (spec.name.empty()) {
    throw std::invalid_argument("ScenarioService: base scenario name must not be empty");
  }
  if (by_name_.count(spec.name) != 0) {
    throw std::invalid_argument("ScenarioService: duplicate base scenario '" +
                                spec.name + "'");
  }
  EnsureBuiltinComponents();
  if (PolicyRegistry().Has(spec.policy) && PolicyRegistry().Get(spec.policy).needs_grid) {
    throw std::invalid_argument(
        "ScenarioService: base scenario '" + spec.name + "' uses grid-reactive "
        "policy '" + spec.policy + "', whose trajectory depends on signal "
        "values — it cannot answer what-ifs from a warm snapshot");
  }
  spec.capture_grid_basis = true;  // the whole service forks under new grids

  auto base = std::make_unique<Base>();
  base->name = spec.name;
  base->probe_spec = spec;
  base->probe_spec.jobs_override.clear();
  base->json_sans_grid = DumpSansGrid(spec);
  base->cache_key = Fnv64Str(spec.name + "\n" + spec.ToJson().Dump(0));
  base->full_spec = std::move(spec);
  by_name_[base->name] = base.get();
  bases_.push_back(std::move(base));
}

void ScenarioService::Warmup() {
  ParallelIndexFor(bases_.size(), options_.workers, [&](std::size_t i) {
    Base& base = *bases_[i];
    std::lock_guard<std::mutex> rebuild(base.rebuild_mu);
    cache_.Put(base.cache_key, SimulateBase(base));
  });
}

std::shared_ptr<const SimStateSnapshot> ScenarioService::SimulateBase(
    const Base& base) {
  ScenarioSpec spec = base.full_spec;  // deep copy; the builder consumes it
  auto sim = SimulationBuilder(std::move(spec)).Build();
  sim->Run();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.simulations;
  }
  return std::make_shared<const SimStateSnapshot>(sim->Snapshot());
}

std::shared_ptr<const SimStateSnapshot> ScenarioService::GetOrBuildSnapshot(
    Base& base) {
  auto snap = cache_.Get(base.cache_key);
  if (snap) return snap;
  // One rebuild per evicted base: concurrent misses on the same base queue
  // behind the mutex and find the fresh entry on the double-check.
  std::lock_guard<std::mutex> rebuild(base.rebuild_mu);
  snap = cache_.Get(base.cache_key);
  if (snap) return snap;
  snap = SimulateBase(base);
  cache_.Put(base.cache_key, snap);
  return snap;
}

ServeReply ScenarioService::WhatIf(const std::string& request_json) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.queries;
  }
  if (draining_.load()) {
    ServeReply r = ErrorReply(503, "service is draining [guard=draining key=-]",
                              options_.retry_after_s);
    CountReply(503);
    return r;
  }

  JsonValue query;
  try {
    query = JsonValue::Parse(request_json);
  } catch (const std::exception& e) {
    ServeReply r = ErrorReply(
        400, std::string("request body is not valid JSON [guard=parse key=-]: ") +
                 e.what());
    CountReply(400);
    return r;
  }
  if (!query.is_object()) {
    ServeReply r = ErrorReply(400,
                              "request body must be a JSON object "
                              "[guard=shape key=-]");
    CountReply(400);
    return r;
  }
  const JsonObject& q = query.AsObject();
  for (const auto& [key, value] : q) {
    if (key != "base" && key != "grid" && key != "patch") {
      ServeReply r = ErrorReply(400, "unknown request key [guard=shape key=" + key +
                                         "]: expected base / grid / patch");
      CountReply(400);
      return r;
    }
  }
  auto base_it = q.find("base");
  if (base_it == q.end() || !base_it->second.is_string()) {
    ServeReply r = ErrorReply(400,
                              "request must name a base scenario "
                              "[guard=shape key=base]");
    CountReply(400);
    return r;
  }
  if (q.count("grid") != 0 && q.count("patch") != 0) {
    ServeReply r = ErrorReply(400,
                              "give either a full grid or a patch, not both "
                              "[guard=shape key=grid]");
    CountReply(400);
    return r;
  }

  auto found = by_name_.find(base_it->second.AsString());
  if (found == by_name_.end()) {
    ServeReply r = ErrorReply(404, "unknown base scenario '" +
                                       base_it->second.AsString() + "'");
    CountReply(404);
    return r;
  }
  Base& base = *found->second;

  // Resolve the query to a full grid environment via the strict round-trip
  // spec machinery; anything it rejects comes back verbatim as the 400 body.
  ScenarioSpec probe = base.probe_spec;
  try {
    auto grid_it = q.find("grid");
    if (grid_it != q.end()) {
      probe.grid = GridEnvironment::FromJson(grid_it->second);
    }
    auto patch_it = q.find("patch");
    if (patch_it != q.end()) {
      if (!patch_it->second.is_object()) {
        throw std::invalid_argument("patch must be an object of dotted keys");
      }
      for (const auto& [key, value] : patch_it->second.AsObject()) {
        ApplyScenarioKey(probe, key, value);
      }
    }
  } catch (const std::exception& e) {
    ServeReply r = ErrorReply(400, e.what());
    CountReply(400);
    return r;
  }

  // Only the grid may vary: any other change would invalidate the captured
  // trajectory, so name the first offending key instead of answering wrong.
  const std::string probe_sans_grid = DumpSansGrid(probe);
  if (probe_sans_grid != base.json_sans_grid) {
    ServeReply r = ErrorReply(
        400, "only grid variations are answerable from a warm snapshot "
             "[guard=non_grid_patch key=" +
                 FirstChangedKey(base.json_sans_grid, probe_sans_grid) +
                 "]: run a full scenario for this change");
    CountReply(400);
    return r;
  }

  const std::string grid_json = probe.grid.ToJson().Dump(0);
  const std::string coalesce_key = base.name + "\n" + grid_json;

  std::shared_ptr<Pending> pending;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(coalesce_key);
    if (it != inflight_.end()) {
      pending = it->second;
      std::lock_guard<std::mutex> stats(stats_mu_);
      ++counters_.coalesced;
    } else {
      pending = std::make_shared<Pending>();
      pending->future = pending->promise.get_future().share();
      inflight_[coalesce_key] = pending;
      owner = true;
    }
  }

  if (owner) {
    GridEnvironment grid = probe.grid;
    Base* base_ptr = &base;
    const bool submitted = pool_.TrySubmit([this, base_ptr, grid = std::move(grid),
                                            grid_json, pending]() {
      pending->promise.set_value(ComputeWhatIf(*base_ptr, grid, grid_json));
    });
    if (!submitted) {
      {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_.erase(coalesce_key);
      }
      ServeReply r = ErrorReply(
          503, "fork queue is full [guard=backpressure key=-]: retry shortly",
          options_.retry_after_s);
      CountReply(503);
      // Unblock any waiter that coalesced onto this entry before the erase.
      pending->promise.set_value(r);
      return r;
    }
  }

  ServeReply reply = pending->future.get();
  if (owner) {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(coalesce_key);
  }
  CountReply(reply.status);
  return reply;
}

ServeReply ScenarioService::ComputeWhatIf(Base& base, const GridEnvironment& grid,
                                          const std::string& grid_json) {
  try {
    auto snap = GetOrBuildSnapshot(base);
    const int delay = fork_delay_ms_.load();
    if (delay > 0) std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    const auto t0 = std::chrono::steady_clock::now();
    auto fork = Simulation::ForkWithGrid(*snap, grid);
    ScenarioResult res;
    res.name = base.name;
    ExtractScenarioMetrics(*fork, res, /*capture_stats_json=*/false);
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    RecordLatencyUs(us);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.forks;
    }

    // Deterministic 200 body: pure function of (base, grid).  No wall-clock,
    // latency, or cache state in here — those live in /stats.
    JsonObject metrics;
    metrics["completed"] = JsonValue(static_cast<std::int64_t>(res.counters.completed));
    metrics["dismissed"] = JsonValue(static_cast<std::int64_t>(res.counters.dismissed));
    metrics["avg_wait_s"] = res.avg_wait_s;
    metrics["avg_turnaround_s"] = res.avg_turnaround_s;
    metrics["makespan_s"] = res.makespan_s;
    metrics["total_energy_j"] = res.total_energy_j;
    metrics["mean_power_kw"] = res.mean_power_kw;
    metrics["max_power_kw"] = res.max_power_kw;
    metrics["mean_util_pct"] = res.mean_util_pct;
    metrics["mean_pue"] = res.mean_pue;
    metrics["grid_cost_usd"] = res.grid_cost_usd;
    metrics["grid_co2_kg"] = res.grid_co2_kg;
    JsonObject body;
    body["base"] = base.name;
    body["grid"] = JsonValue::Parse(grid_json);
    body["metrics"] = JsonValue(std::move(metrics));
    body["fingerprint"] = HexFingerprint(res.fingerprint);
    return ServeReply{200, JsonValue(std::move(body)).Dump(2) + "\n", 0};
  } catch (const std::invalid_argument& e) {
    return ErrorReply(400, e.what());  // ForkWithGrid guard text, verbatim
  } catch (const std::exception& e) {
    return ErrorReply(500, e.what());
  }
}

std::string ScenarioService::HealthJson() const {
  JsonObject o;
  o["status"] = draining_.load() ? "draining" : "ok";
  JsonArray names;
  for (const auto& base : bases_) names.emplace_back(base->name);
  o["bases"] = JsonValue(std::move(names));
  return JsonValue(std::move(o)).Dump(2) + "\n";
}

std::string ScenarioService::StatsJson() const {
  ServeCounters c;
  std::vector<double> lat;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    c = counters_;
    lat.assign(fork_latency_us_.begin(), fork_latency_us_.end());
  }
  JsonObject counters;
  counters["queries"] = JsonValue(static_cast<std::int64_t>(c.queries));
  counters["coalesced"] = JsonValue(static_cast<std::int64_t>(c.coalesced));
  counters["forks"] = JsonValue(static_cast<std::int64_t>(c.forks));
  counters["simulations"] = JsonValue(static_cast<std::int64_t>(c.simulations));
  JsonObject replies;
  replies["200"] = JsonValue(static_cast<std::int64_t>(c.replies_200));
  replies["400"] = JsonValue(static_cast<std::int64_t>(c.replies_400));
  replies["404"] = JsonValue(static_cast<std::int64_t>(c.replies_404));
  replies["503"] = JsonValue(static_cast<std::int64_t>(c.replies_503));

  JsonObject latency;
  latency["samples"] = JsonValue(static_cast<std::int64_t>(lat.size()));
  if (!lat.empty()) {
    latency["p50_us"] = Percentile(lat, 50.0);
    latency["p90_us"] = Percentile(lat, 90.0);
    latency["p99_us"] = Percentile(lat, 99.0);
    latency["max_us"] = *std::max_element(lat.begin(), lat.end());
  }

  JsonObject o;
  o["bases"] = JsonValue(static_cast<std::int64_t>(bases_.size()));
  o["workers"] = JsonValue(static_cast<std::int64_t>(workers()));
  o["queue_depth"] = JsonValue(static_cast<std::int64_t>(QueueDepth()));
  o["counters"] = JsonValue(std::move(counters));
  o["replies"] = JsonValue(std::move(replies));
  o["cache"] = cache_.Stats().ToJson();
  o["fork_latency"] = JsonValue(std::move(latency));
  return JsonValue(std::move(o)).Dump(2) + "\n";
}

ServeCounters ScenarioService::Counters() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return counters_;
}

void ScenarioService::Stop() {
  draining_.store(true);
  pool_.Shutdown();  // drains queued forks; waiters get their futures
}

void ScenarioService::RecordLatencyUs(double us) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  fork_latency_us_.push_back(us);
  if (fork_latency_us_.size() > kLatencyWindow) fork_latency_us_.pop_front();
}

void ScenarioService::CountReply(int status) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  switch (status) {
    case 200: ++counters_.replies_200; break;
    case 400: ++counters_.replies_400; break;
    case 404: ++counters_.replies_404; break;
    case 503: ++counters_.replies_503; break;
    default: break;
  }
}

HttpResponse RouteRequest(ScenarioService& service, const HttpRequest& req) {
  HttpResponse resp;
  if (req.path == "/healthz") {
    if (req.method != "GET") {
      resp.status = 405;
      resp.body = "{\"error\": \"use GET /healthz\"}\n";
      return resp;
    }
    resp.body = service.HealthJson();
    return resp;
  }
  if (req.path == "/stats") {
    if (req.method != "GET") {
      resp.status = 405;
      resp.body = "{\"error\": \"use GET /stats\"}\n";
      return resp;
    }
    resp.body = service.StatsJson();
    return resp;
  }
  if (req.path == "/whatif") {
    if (req.method != "POST") {
      resp.status = 405;
      resp.body = "{\"error\": \"use POST /whatif\"}\n";
      return resp;
    }
    ServeReply reply = service.WhatIf(req.body);
    resp.status = reply.status;
    resp.body = std::move(reply.body);
    if (reply.retry_after_s > 0) {
      resp.extra_headers.emplace_back("Retry-After",
                                      std::to_string(reply.retry_after_s));
    }
    return resp;
  }
  resp.status = 404;
  resp.body = "{\"error\": \"no such endpoint; try /healthz, /stats, POST /whatif\"}\n";
  return resp;
}

}  // namespace sraps
