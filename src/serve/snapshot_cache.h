// Fingerprint-keyed LRU cache of SimStateSnapshots for the scenario service.
//
// The service answers what-if queries by forking a cached snapshot instead of
// re-running the base trajectory; this cache decides which trajectories stay
// resident.  Entries are keyed by a 64-bit digest of the base scenario (the
// service computes it over the canonical spec JSON plus a workload digest) and
// accounted in bytes via SimStateSnapshot::ApproxBytes().  Inserting past the
// byte budget evicts least-recently-used entries until the new snapshot fits;
// an evicted base is rebuilt on the next miss by re-running its trajectory.
//
// Snapshots are held as shared_ptr<const SimStateSnapshot>: Get() hands out a
// reference that stays valid while a fork is in flight even if the entry is
// evicted concurrently.  All operations are thread-safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/json.h"
#include "core/snapshot.h"

namespace sraps {

/// Counters exported on the service's /stats endpoint.
struct SnapshotCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t inserts = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;      ///< resident snapshots right now
  std::size_t bytes = 0;        ///< ApproxBytes sum of resident snapshots
  std::size_t byte_budget = 0;  ///< configured ceiling (0 = unbounded)

  /// Deterministic-key-order JSON (hit_rate included, computed).
  JsonValue ToJson() const;
};

class SnapshotCache {
 public:
  /// `byte_budget` caps the ApproxBytes sum of resident entries; 0 means
  /// unbounded.  A single snapshot larger than the whole budget is still
  /// admitted (evicting everything else) — refusing it would make its base
  /// permanently cold, which defeats the cache's purpose.
  explicit SnapshotCache(std::size_t byte_budget) : byte_budget_(byte_budget) {}

  /// Returns the cached snapshot and marks it most-recently-used, or nullptr
  /// on a miss.  Counts a hit or miss.
  std::shared_ptr<const SimStateSnapshot> Get(std::uint64_t key);

  /// Inserts (or replaces) `snap` under `key`, then evicts LRU entries until
  /// the byte budget holds again.  The returned pointer is the resident
  /// entry; in-flight readers of evicted snapshots keep their references.
  void Put(std::uint64_t key, std::shared_ptr<const SimStateSnapshot> snap);

  SnapshotCacheStats Stats() const;

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const SimStateSnapshot> snap;
    std::size_t bytes = 0;
  };

  void EvictToBudgetLocked();

  const std::size_t byte_budget_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  SnapshotCacheStats stats_;
};

}  // namespace sraps
