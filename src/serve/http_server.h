// Minimal HTTP/1.1 server on raw POSIX sockets — just enough protocol for the
// scenario service: request line + headers + Content-Length bodies, keep-alive
// connections, one thread per connection.  No third-party dependencies, no
// TLS, no chunked encoding; clients are curl / python http.client / the
// bundled loadtest, all of which speak this subset.
//
// Lifecycle: construct with a handler, Start() binds (port 0 picks an
// ephemeral port, readable via port()) and spawns the accept loop, Stop()
// shuts the listener down, half-closes every open connection so blocked
// reads return, and waits for all connection threads to finish their
// in-flight request — a graceful drain, not an abort.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

namespace sraps {

struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string path;    ///< path only; any ?query is kept verbatim
  std::map<std::string, std::string> headers;  ///< keys lower-cased
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra headers appended verbatim (e.g. {"Retry-After", "1"}).
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler);
  ~HttpServer();  ///< calls Stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds `bind_addr:port` (port 0 = ephemeral) and starts accepting.
  /// Throws std::runtime_error on socket/bind/listen failure.
  void Start(const std::string& bind_addr, int port);

  /// The bound port (resolves an ephemeral request); 0 before Start().
  int port() const { return port_; }

  /// Graceful drain: stop accepting, half-close idle connections, wait for
  /// every in-flight handler to finish and its response to be written.
  /// Idempotent.
  void Stop();

  std::size_t connections_accepted() const { return connections_accepted_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Consumes one request from `buf` (reading more off `fd` as needed);
  /// leftover bytes stay in `buf` for the next pipelined request.  False on
  /// EOF/error/oversize.
  bool ReadRequest(int fd, std::string* buf, HttpRequest* req);
  bool WriteResponse(int fd, const HttpResponse& resp, bool keep_alive);

  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::atomic<std::size_t> connections_accepted_{0};

  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::unordered_set<int> open_fds_;
  std::size_t active_connections_ = 0;
};

}  // namespace sraps
