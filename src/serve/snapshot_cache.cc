#include "serve/snapshot_cache.h"

#include <utility>

namespace sraps {

JsonValue SnapshotCacheStats::ToJson() const {
  JsonObject o;
  o["hits"] = JsonValue(static_cast<std::int64_t>(hits));
  o["misses"] = JsonValue(static_cast<std::int64_t>(misses));
  o["inserts"] = JsonValue(static_cast<std::int64_t>(inserts));
  o["evictions"] = JsonValue(static_cast<std::int64_t>(evictions));
  o["entries"] = JsonValue(static_cast<std::int64_t>(entries));
  o["bytes"] = JsonValue(static_cast<std::int64_t>(bytes));
  o["byte_budget"] = JsonValue(static_cast<std::int64_t>(byte_budget));
  const std::size_t lookups = hits + misses;
  o["hit_rate"] = lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  return JsonValue(std::move(o));
}

std::shared_ptr<const SimStateSnapshot> SnapshotCache::Get(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->snap;
}

void SnapshotCache::Put(std::uint64_t key,
                        std::shared_ptr<const SimStateSnapshot> snap) {
  const std::size_t bytes = snap->ApproxBytes();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    stats_.bytes -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, std::move(snap), bytes});
  index_[key] = lru_.begin();
  stats_.bytes += bytes;
  ++stats_.inserts;
  EvictToBudgetLocked();
  stats_.entries = lru_.size();
}

SnapshotCacheStats SnapshotCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SnapshotCacheStats s = stats_;
  s.entries = lru_.size();
  s.byte_budget = byte_budget_;
  return s;
}

void SnapshotCache::EvictToBudgetLocked() {
  if (byte_budget_ == 0) return;
  // Never evict the entry just inserted (front): a snapshot bigger than the
  // whole budget stays resident alone rather than thrashing forever.
  while (stats_.bytes > byte_budget_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace sraps
