#include "serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <stdexcept>

namespace sraps {
namespace {

constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 4 * 1024 * 1024;

std::string StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

std::string LowerCopy(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string TrimCopy(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Sends all of `data`; MSG_NOSIGNAL turns a closed peer into an error
/// return instead of SIGPIPE.
bool SendAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(Handler handler) : handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Start(const std::string& bind_addr, int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("HttpServer: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: bad bind address '" + bind_addr + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: bind to " + bind_addr + ":" +
                             std::to_string(port) + " failed: " +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this]() { AcceptLoop(); });
}

void HttpServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::unique_lock<std::mutex> lock(conn_mu_);
  // Half-close every open connection: a thread blocked in recv() sees EOF
  // and exits its keep-alive loop; a thread mid-handler finishes and writes
  // its response first (the write side stays open).
  for (int fd : open_fds_) ::shutdown(fd, SHUT_RD);
  conn_cv_.wait(lock, [this]() { return active_connections_ == 0; });
}

void HttpServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    ++connections_accepted_;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      open_fds_.insert(fd);
      ++active_connections_;
    }
    std::thread([this, fd]() {
      ServeConnection(fd);
      {
        std::lock_guard<std::mutex> lock(conn_mu_);
        open_fds_.erase(fd);
        --active_connections_;
      }
      ::close(fd);
      conn_cv_.notify_all();
    }).detach();
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string buf;
  for (;;) {
    HttpRequest req;
    if (!ReadRequest(fd, &buf, &req)) return;
    HttpResponse resp;
    try {
      resp = handler_(req);
    } catch (const std::exception& e) {
      resp.status = 500;
      resp.body = std::string("{\"error\": \"unhandled exception: ") + e.what() +
                  "\"}\n";
    }
    auto conn_it = req.headers.find("connection");
    const bool client_close =
        conn_it != req.headers.end() && LowerCopy(conn_it->second) == "close";
    const bool keep_alive = !client_close && !stopping_.load();
    if (!WriteResponse(fd, resp, keep_alive)) return;
    if (!keep_alive) return;
  }
}

bool HttpServer::ReadRequest(int fd, std::string* buf_ptr, HttpRequest* req) {
  std::string& buf = *buf_ptr;
  std::size_t header_end;
  char chunk[4096];
  while ((header_end = buf.find("\r\n\r\n")) == std::string::npos) {
    if (buf.size() > kMaxHeaderBytes) return false;
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<std::size_t>(n));
  }

  // Request line: METHOD SP path SP HTTP/1.x
  std::size_t line_end = buf.find("\r\n");
  const std::string line = buf.substr(0, line_end);
  std::size_t sp1 = line.find(' ');
  std::size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  req->method = line.substr(0, sp1);
  req->path = line.substr(sp1 + 1, sp2 - sp1 - 1);

  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t eol = buf.find("\r\n", pos);
    const std::string header = buf.substr(pos, eol - pos);
    pos = eol + 2;
    std::size_t colon = header.find(':');
    if (colon == std::string::npos) continue;
    req->headers[LowerCopy(TrimCopy(header.substr(0, colon)))] =
        TrimCopy(header.substr(colon + 1));
  }

  std::size_t content_length = 0;
  auto cl = req->headers.find("content-length");
  if (cl != req->headers.end()) {
    try {
      content_length = static_cast<std::size_t>(std::stoull(cl->second));
    } catch (const std::exception&) {
      return false;
    }
  }
  if (content_length > kMaxBodyBytes) return false;
  const std::size_t total = header_end + 4 + content_length;
  while (buf.size() < total) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  req->body = buf.substr(header_end + 4, content_length);
  // Keep any pipelined follow-up request for the next ReadRequest call.
  buf.erase(0, total);
  return true;
}

bool HttpServer::WriteResponse(int fd, const HttpResponse& resp, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    StatusText(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  for (const auto& [key, value] : resp.extra_headers) {
    out += key + ": " + value + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += resp.body;
  return SendAll(fd, out);
}

}  // namespace sraps
