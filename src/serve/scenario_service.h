// ScenarioService: the long-lived what-if engine behind sraps_serve.
//
// The service loads base ScenarioSpecs once, runs each trajectory to the end
// of its window, and keeps the resulting SimStateSnapshots warm in a
// byte-budgeted LRU (serve/snapshot_cache.h).  A what-if query names a base
// and a grid variation — either a full "grid" environment or a "patch" of
// dotted scenario keys ("grid.price.scale": 2.0) applied through the strict
// round-trip spec machinery — and is answered by Simulation::ForkWithGrid on
// a bounded worker pool: one fork prices the captured trajectory under the
// new tariff with accounting bit-identical to a full re-run.
//
// Operational guarantees:
//   * Coalescing — identical queries in flight share one fork; late
//     arrivals wait on the same future instead of duplicating work.
//   * Backpressure — a full worker queue rejects with 503 + Retry-After
//     instead of queueing unboundedly.
//   * Determinism — a query's 200 body is a pure function of (base, grid):
//     byte-identical at any worker count, any arrival order, hit or miss.
//     Volatile numbers (latency, hit rate, queue depth) live only in /stats.
//   * Graceful shutdown — Stop() drains queued and in-flight queries to
//     completion; new queries get 503.
//
// The service is transport-free; RouteRequest() adapts it to the bundled
// HTTP server (GET /healthz, GET /stats, POST /whatif).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/scenario.h"
#include "core/snapshot.h"
#include "grid/grid_environment.h"
#include "serve/http_server.h"
#include "serve/snapshot_cache.h"

namespace sraps {

struct ServeOptions {
  unsigned workers = 0;          ///< fork workers; 0 = hardware concurrency
  std::size_t max_queue = 256;   ///< pending forks before 503 (0 = unbounded)
  std::size_t cache_bytes = 512ull << 20;  ///< snapshot LRU budget (0 = unbounded)
  int retry_after_s = 1;         ///< Retry-After hint on 503
};

/// A transport-independent reply: RouteRequest turns it into an HttpResponse.
struct ServeReply {
  int status = 200;
  std::string body;        ///< JSON, newline-terminated
  int retry_after_s = 0;   ///< > 0 → emit a Retry-After header
};

/// Monotonic service counters (exported in /stats, asserted in tests).
struct ServeCounters {
  std::size_t queries = 0;        ///< WhatIf calls accepted for parsing
  std::size_t coalesced = 0;      ///< joined an identical in-flight query
  std::size_t forks = 0;          ///< ForkWithGrid executions
  std::size_t simulations = 0;    ///< base trajectory runs (warmup + rebuilds)
  std::size_t replies_200 = 0;
  std::size_t replies_400 = 0;
  std::size_t replies_404 = 0;
  std::size_t replies_503 = 0;
};

class ScenarioService {
 public:
  explicit ScenarioService(ServeOptions options = {});
  ~ScenarioService();  ///< calls Stop()

  ScenarioService(const ScenarioService&) = delete;
  ScenarioService& operator=(const ScenarioService&) = delete;

  /// Registers a base scenario.  capture_grid_basis is forced on (the whole
  /// point is forking under new grids).  Throws std::invalid_argument on an
  /// empty/duplicate name or a grid-reactive policy, which could never
  /// answer a what-if from a warm snapshot.
  void AddBase(ScenarioSpec spec);

  /// Runs every base trajectory (in parallel) and fills the snapshot cache.
  /// Optional — a cold base is simulated on first query — but a warmed
  /// service answers its first query at fork latency.
  void Warmup();

  /// Answers one what-if request body:
  ///   {"base": "<name>"}                                  — base metrics
  ///   {"base": "<name>", "grid": {...}}                   — full environment
  ///   {"base": "<name>", "patch": {"grid.price.scale": 2}} — dotted keys
  /// 200 bodies are deterministic (see file comment); errors are 400 with
  /// the offending guard/key named (ForkWithGrid guard text verbatim), 404
  /// for an unknown base, 503 under backpressure or draining.
  ServeReply WhatIf(const std::string& request_json);

  /// {"status": "ok"|"draining", "bases": [...names...]}.
  std::string HealthJson() const;

  /// Cache stats, counters, queue depth, fork-latency percentiles.
  std::string StatsJson() const;

  ServeCounters Counters() const;
  SnapshotCacheStats CacheStats() const { return cache_.Stats(); }
  std::size_t QueueDepth() const { return pool_.QueueDepth(); }
  unsigned workers() const { return pool_.thread_count(); }

  /// Drains queued and in-flight queries, then rejects new ones with 503.
  /// Idempotent.
  void Stop();

  /// Test hook: every fork sleeps this long first, making coalescing /
  /// backpressure windows deterministic in tests.  Not for production use.
  void SetForkDelayForTest(int millis) { fork_delay_ms_ = millis; }

 private:
  struct Base {
    std::string name;
    ScenarioSpec full_spec;   ///< original, jobs_override included — rebuild source
    ScenarioSpec probe_spec;  ///< jobs stripped — cheap per-query copy for patching
    std::string json_sans_grid;  ///< canonical spec JSON minus "grid" (patch guard)
    std::uint64_t cache_key = 0;
    std::mutex rebuild_mu;    ///< one rebuild per base after eviction
  };
  struct Pending {
    std::promise<ServeReply> promise;
    std::shared_future<ServeReply> future;
  };

  std::shared_ptr<const SimStateSnapshot> GetOrBuildSnapshot(Base& base);
  std::shared_ptr<const SimStateSnapshot> SimulateBase(const Base& base);
  ServeReply ComputeWhatIf(Base& base, const GridEnvironment& grid,
                           const std::string& grid_json);
  void RecordLatencyUs(double us);
  void CountReply(int status);

  const ServeOptions options_;
  SnapshotCache cache_;
  BoundedThreadPool pool_;

  std::vector<std::unique_ptr<Base>> bases_;  ///< insertion order (stable JSON)
  std::map<std::string, Base*> by_name_;

  mutable std::mutex inflight_mu_;
  std::map<std::string, std::shared_ptr<Pending>> inflight_;

  mutable std::mutex stats_mu_;
  ServeCounters counters_;
  std::deque<double> fork_latency_us_;  ///< bounded sample window

  std::atomic<bool> draining_{false};
  std::atomic<int> fork_delay_ms_{0};
};

/// Maps the three endpoints onto a service; anything else is 404 (unknown
/// path) or 405 (wrong method on a known path).
HttpResponse RouteRequest(ScenarioService& service, const HttpRequest& req);

}  // namespace sraps
