#include "dist/coordinator.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "common/csv.h"
#include "dist/sweep_worker.h"
#include "dist/work_queue.h"

namespace sraps {

namespace fs = std::filesystem;

namespace {

std::string ShardFileName(std::size_t s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "rows-%05zu.csv", s);
  return buf;
}

std::string DefaultWorkerBinary() {
  std::error_code ec;
  const fs::path self = fs::read_symlink("/proc/self/exe", ec);
  if (ec) return "sraps_sweep_worker";  // PATH lookup as a last resort
  return (self.parent_path() / "sraps_sweep_worker").string();
}

pid_t SpawnWorker(const std::string& binary, const std::string& work_dir,
                  const std::string& worker_id,
                  const DistributedSweepOptions& options) {
  const pid_t pid = fork();
  if (pid < 0) throw std::runtime_error("RunDistributedSweep: fork failed");
  if (pid > 0) return pid;
  // Child: exec the worker.  _exit (not exit) on failure so we never unwind
  // the parent's state twice.
  const std::string threads = std::to_string(options.threads_per_worker);
  const std::string timeout = std::to_string(options.straggler_timeout_s);
  execl(binary.c_str(), binary.c_str(), work_dir.c_str(),  //
        "--id", worker_id.c_str(),                         //
        "--threads", threads.c_str(),                      //
        "--steal-timeout", timeout.c_str(),                //
        static_cast<char*>(nullptr));
  std::fprintf(stderr, "sraps: cannot exec worker binary %s\n", binary.c_str());
  _exit(127);
}

}  // namespace

std::vector<SweepRow> ParseShardCsv(const std::string& path,
                                    const SweepSpec& spec) {
  const CsvTable table = CsvTable::Load(path);
  const auto& metric_names = SweepAggregator::MetricNames();
  // Metric/fingerprint cells were written with %.17g / %016x exactly so this
  // strtod/strtoull round trip reproduces the producer's bits.
  std::vector<SweepRow> rows;
  rows.reserve(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    SweepRow row;
    row.index = static_cast<std::size_t>(
        table.GetInt(r, "index").value_or(-1));
    row.name = table.Cell(r, "name");
    row.ok = table.Cell(r, "ok") == "1";
    row.error = table.Cell(r, "error");
    for (const SweepAxis& axis : spec.axes) {
      row.axis_values.emplace_back(table.Cell(r, axis.key));
    }
    double metrics[12] = {};
    for (std::size_t m = 0; m < metric_names.size(); ++m) {
      metrics[m] = std::strtod(table.Cell(r, metric_names[m]).c_str(), nullptr);
    }
    row.completed = static_cast<std::size_t>(metrics[0]);
    row.dismissed = static_cast<std::size_t>(metrics[1]);
    row.avg_wait_s = metrics[2];
    row.avg_turnaround_s = metrics[3];
    row.makespan_s = metrics[4];
    row.total_energy_j = metrics[5];
    row.mean_power_kw = metrics[6];
    row.max_power_kw = metrics[7];
    row.mean_util_pct = metrics[8];
    row.mean_pue = metrics[9];
    row.grid_cost_usd = metrics[10];
    row.grid_co2_kg = metrics[11];
    row.fingerprint =
        std::strtoull(table.Cell(r, "fingerprint").c_str(), nullptr, 16);
    rows.push_back(std::move(row));
  }
  return rows;
}

DistributedSweepSummary RunDistributedSweep(
    const SweepSpec& spec, const std::string& work_dir,
    const std::string& out_dir, const DistributedSweepOptions& options) {
  const auto wall_start = std::chrono::steady_clock::now();

  // Resolve the workload FIRST so a calibrating sweep is fitted exactly once;
  // the manifest then carries the fitted spec and every worker replays it.
  SweepRunner runner(spec);
  runner.ResolveWorkload();
  const SweepSpec& resolved = runner.spec();

  QueueConfig config;
  config.scenario_count = resolved.ScenarioCount();
  config.shard_size = std::max<std::size_t>(1, options.shard_size);
  config.tree = options.tree;
  SweepWorkQueue queue =
      SweepWorkQueue::Create(work_dir, resolved, config, options.shards_per_item);

  DistributedSweepSummary summary;
  summary.total = config.scenario_count;
  summary.items_total = queue.TodoCount();

  // Spawn the fleet and babysit it: reap exits, reclaim stragglers' items,
  // and (under fault injection) kill the first worker once work is in flight.
  const std::string binary =
      options.worker_binary.empty() ? DefaultWorkerBinary() : options.worker_binary;
  std::vector<pid_t> children;
  for (unsigned w = 0; w < options.workers; ++w) {
    children.push_back(
        SpawnWorker(binary, queue.dir(), "w" + std::to_string(w), options));
  }
  summary.workers_spawned = children.size();

  bool kill_pending = options.kill_first_worker && !children.empty();
  std::size_t live = children.size();
  while (live > 0) {
    for (pid_t& pid : children) {
      if (pid == 0) continue;
      int status = 0;
      const pid_t reaped = waitpid(pid, &status, WNOHANG);
      if (reaped == pid) {
        pid = 0;
        --live;
      }
    }
    if (live == 0) break;
    if (kill_pending && queue.ClaimedCount() + queue.DoneCount() > 0) {
      // Fault injection: hard-kill the first still-live worker mid-sweep.
      for (pid_t pid : children) {
        if (pid == 0) continue;
        kill(pid, SIGKILL);
        ++summary.workers_killed;
        break;
      }
      kill_pending = false;
    }
    summary.items_reclaimed += queue.ReclaimStale(options.straggler_timeout_s);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options.poll_seconds));
  }

  // Workers are gone; anything still claimed belonged to a dead one.  Drain
  // the remainder inline — same worker code path, just in this process.
  summary.items_reclaimed += queue.ReclaimStale(0.0);
  if (!queue.Drained()) {
    SweepWorkerOptions inline_options;
    inline_options.worker_id = "coordinator";
    inline_options.threads = options.threads_per_worker;
    const SweepWorkerReport drained = RunSweepWorker(queue.dir(), inline_options);
    summary.items_inline = drained.items_completed;
  }
  if (!queue.Drained()) {
    throw std::runtime_error(
        "RunDistributedSweep: queue not drained after inline pass");
  }

  // Merge: every shard must be present; re-fold their rows into the same
  // aggregates a single-process run computes, then write the whole-grid
  // artifacts and move the shards into place.
  const std::size_t num_shards =
      (config.scenario_count + config.shard_size - 1) / config.shard_size;
  fs::create_directories(out_dir);
  SweepAggregator aggregator(config.scenario_count);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const fs::path shard = fs::path(queue.ShardsDir()) / ShardFileName(s);
    if (!fs::exists(shard)) {
      throw std::runtime_error("RunDistributedSweep: missing shard " +
                               shard.string());
    }
    const std::size_t shard_begin = s * config.shard_size;
    const std::size_t shard_rows = std::min(
        config.shard_size, config.scenario_count - shard_begin);
    const std::vector<SweepRow> rows = ParseShardCsv(shard.string(), resolved);
    if (rows.size() != shard_rows) {
      throw std::runtime_error(
          "RunDistributedSweep: shard " + shard.string() + " has " +
          std::to_string(rows.size()) + " rows, expected " +
          std::to_string(shard_rows));
    }
    for (const SweepRow& row : rows) {
      if (row.index < shard_begin || row.index >= shard_begin + shard_rows) {
        throw std::runtime_error("RunDistributedSweep: shard " +
                                 shard.string() + " carries foreign index " +
                                 std::to_string(row.index));
      }
      if (row.ok) {
        ++summary.ok_count;
      } else {
        ++summary.failed_count;
      }
      aggregator.Fold(row);  // throws on duplicate/out-of-range indices
    }
    const fs::path dest = fs::path(out_dir) / ShardFileName(s);
    fs::copy_file(shard, dest, fs::copy_options::overwrite_existing);
    summary.shard_paths.push_back(dest.string());
  }
  summary.aggregates = aggregator.Finalize();
  WriteSweepArtifacts(out_dir, resolved, summary.aggregates, config.shard_size);

  summary.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return summary;
}

}  // namespace sraps
