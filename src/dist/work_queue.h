// Filesystem work queue for distributed sweeps: a manifest directory whose
// work items are claimed by atomic rename, so any number of worker
// PROCESSES (same machine or a shared filesystem) can drain one sweep with
// no coordinator connection, no locks, and no state beyond the directory
// itself.
//
// Layout of a work directory:
//
//   spec.json    the sweep spec as executed (workload already resolved /
//                synthetic already fitted by the coordinator, so every
//                worker replays the identical grid)
//   queue.json   {scenario_count, shard_size, tree} — the execution contract
//   todo/        item-NNNNN.json work items, one per output shard
//   claimed/     items some worker is (or was) running
//   done/        items whose shards are fully written
//   shards/      completed rows-NNNNN.csv shards, byte-identical to a
//                single-process run's
//   staging/     per-worker scratch; shards are renamed out of here into
//                shards/ so a reader never sees a half-written shard
//
// Claim()   = rename(todo/X, claimed/X): exactly one renamer wins, losers
//             get ENOENT and move on — that is the whole concurrency story.
//             The winner re-stamps the file's mtime (rename preserves it,
//             and staleness is judged by mtime).
// Heartbeat()= re-stamp a claimed item's mtime while it runs, so a LIVE
//             worker on a long item is never mistaken for a dead one.
// Complete()= rename(claimed/X, done/X) after the item's shards landed.
// ReclaimStale() = rename(claimed/X, todo/X) for items whose mtime — i.e.
//             last claim or heartbeat — is older than a straggler timeout.
//             A reclaimed item may still be finished by its original
//             (slow, not dead) worker; that is benign by construction,
//             because both workers write byte-identical shards and the
//             rename into shards/ just overwrites equal bytes.
//             Determinism makes work stealing free.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "sweep/sweep_spec.h"

namespace sraps {

/// One unit of distributed work: a shard-aligned scenario subrange.
struct WorkItem {
  std::size_t id = 0;     ///< == first shard index covered
  std::size_t begin = 0;  ///< scenario subrange, shard-aligned
  std::size_t end = 0;
};

/// The execution contract shared by every worker of one sweep.
struct QueueConfig {
  std::size_t scenario_count = 0;
  std::size_t shard_size = 256;
  bool tree = false;  ///< workers run with SweepOptions::tree
  JsonValue ToJson() const;
  static QueueConfig FromJson(const JsonValue& v);
};

class SweepWorkQueue {
 public:
  /// Creates the directory layout and one todo item per `shards_per_item`
  /// output shards.  Throws if `dir` already contains a queue.
  static SweepWorkQueue Create(const std::string& dir, const SweepSpec& spec,
                               const QueueConfig& config,
                               std::size_t shards_per_item = 1);

  /// Opens an existing queue (a worker attaching to a coordinator's dir).
  static SweepWorkQueue Open(const std::string& dir);

  const std::string& dir() const { return dir_; }
  const QueueConfig& config() const { return config_; }

  /// Re-reads spec.json (workers parse it once and keep their own copy).
  SweepSpec LoadSpec() const;

  /// Atomically claims one pending item; nullopt when todo/ is empty.
  /// Races between workers are settled by rename: the loser just retries
  /// the next directory entry.  The claim re-stamps the item's mtime so
  /// staleness is measured from the claim, not the queue's creation.
  std::optional<WorkItem> Claim();

  /// Re-stamps a claimed item's mtime so ReclaimStale keeps counting from
  /// "now".  Returns false when the file is gone (completed or stolen) —
  /// harmless, the caller keeps running either way.
  bool Heartbeat(const WorkItem& item);

  /// Marks a claimed item done.  Tolerates the item having been stolen
  /// (reclaimed and finished by someone else) — the shards are identical
  /// either way.
  void Complete(const WorkItem& item);

  /// Returns claimed items older than `age_seconds` to todo/ and reports
  /// how many were reclaimed.  age 0 reclaims every claimed item (used
  /// after all workers exited: anything still claimed belongs to a dead
  /// worker).
  std::size_t ReclaimStale(double age_seconds);

  /// True when todo/ and claimed/ are both empty: every item is done.
  bool Drained() const;

  std::size_t TodoCount() const;
  std::size_t ClaimedCount() const;
  std::size_t DoneCount() const;

  /// The staging directory for one (worker, item) pair, created on demand.
  std::string StagingDir(const std::string& worker_id, std::size_t item_id) const;
  std::string ShardsDir() const { return dir_ + "/shards"; }

 private:
  explicit SweepWorkQueue(std::string dir);
  std::string dir_;
  QueueConfig config_;
};

}  // namespace sraps
