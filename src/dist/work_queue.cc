#include "dist/work_queue.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace sraps {

namespace fs = std::filesystem;

namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void Spill(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << text;
}

std::string ItemFileName(std::size_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "item-%05zu.json", id);
  return buf;
}

JsonValue ItemToJson(const WorkItem& item) {
  JsonObject o;
  o["id"] = static_cast<std::int64_t>(item.id);
  o["begin"] = static_cast<std::int64_t>(item.begin);
  o["end"] = static_cast<std::int64_t>(item.end);
  return JsonValue(std::move(o));
}

WorkItem ItemFromJson(const JsonValue& v) {
  WorkItem item;
  item.id = static_cast<std::size_t>(v.At("id").AsInt());
  item.begin = static_cast<std::size_t>(v.At("begin").AsInt());
  item.end = static_cast<std::size_t>(v.At("end").AsInt());
  return item;
}

/// rename(2) semantics without exceptions: true when the rename happened,
/// false when the source vanished first (another worker won the race).
/// Any other failure (permissions, cross-device) still throws.
bool TryRename(const fs::path& from, const fs::path& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (!ec) return true;
  if (ec == std::errc::no_such_file_or_directory) return false;
  throw fs::filesystem_error("work-queue rename", from, to, ec);
}

std::size_t CountFiles(const fs::path& dir) {
  std::size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) ++n;
  }
  return n;
}

}  // namespace

JsonValue QueueConfig::ToJson() const {
  JsonObject o;
  o["scenario_count"] = static_cast<std::int64_t>(scenario_count);
  o["shard_size"] = static_cast<std::int64_t>(shard_size);
  o["tree"] = tree;
  return JsonValue(std::move(o));
}

QueueConfig QueueConfig::FromJson(const JsonValue& v) {
  QueueConfig config;
  config.scenario_count = static_cast<std::size_t>(v.At("scenario_count").AsInt());
  config.shard_size = static_cast<std::size_t>(v.At("shard_size").AsInt());
  config.tree = v.At("tree").AsBool();
  return config;
}

SweepWorkQueue::SweepWorkQueue(std::string dir) : dir_(std::move(dir)) {}

SweepWorkQueue SweepWorkQueue::Create(const std::string& dir,
                                      const SweepSpec& spec,
                                      const QueueConfig& config,
                                      std::size_t shards_per_item) {
  if (config.scenario_count == 0) {
    throw std::invalid_argument("work queue needs scenario_count > 0");
  }
  if (config.shard_size == 0) {
    throw std::invalid_argument("work queue needs shard_size > 0");
  }
  if (shards_per_item == 0) {
    throw std::invalid_argument("work queue needs shards_per_item > 0");
  }
  if (fs::exists(fs::path(dir) / "queue.json")) {
    throw std::invalid_argument("work queue already exists in " + dir);
  }
  // The manifest must reproduce the workload from the file alone; the
  // programmatic-only fields silently vanish through ToJson, which would
  // hand workers a jobless grid.
  if (!spec.base.jobs_override.empty() || spec.base.config_override) {
    throw std::invalid_argument(
        "work queue: spec '" + spec.name +
        "' uses jobs_override/config_override, which are not "
        "file-representable; distribute a dataset_path or synthetic sweep");
  }
  fs::create_directories(dir);
  for (const char* sub : {"todo", "claimed", "done", "shards", "staging"}) {
    fs::create_directories(fs::path(dir) / sub);
  }
  Spill(dir + "/spec.json", spec.ToJson().Dump(2) + "\n");
  Spill(dir + "/queue.json", config.ToJson().Dump(2) + "\n");

  const std::size_t item_span = config.shard_size * shards_per_item;
  std::size_t item_id = 0;
  for (std::size_t begin = 0; begin < config.scenario_count;
       begin += item_span, ++item_id) {
    WorkItem item;
    item.id = item_id;
    item.begin = begin;
    item.end = std::min(begin + item_span, config.scenario_count);
    Spill((fs::path(dir) / "todo" / ItemFileName(item.id)).string(),
          ItemToJson(item).Dump(2) + "\n");
  }

  SweepWorkQueue queue(dir);
  queue.config_ = config;
  return queue;
}

SweepWorkQueue SweepWorkQueue::Open(const std::string& dir) {
  SweepWorkQueue queue(dir);
  queue.config_ = QueueConfig::FromJson(JsonValue::Parse(Slurp(dir + "/queue.json")));
  return queue;
}

SweepSpec SweepWorkQueue::LoadSpec() const {
  return SweepSpec::FromJson(JsonValue::Parse(Slurp(dir_ + "/spec.json")));
}

std::optional<WorkItem> SweepWorkQueue::Claim() {
  // Walk todo/ in name order (deterministic claim order under one worker;
  // under several the rename race decides) and take the first rename we win.
  std::vector<fs::path> candidates;
  for (const auto& entry : fs::directory_iterator(fs::path(dir_) / "todo")) {
    if (entry.is_regular_file()) candidates.push_back(entry.path());
  }
  std::sort(candidates.begin(), candidates.end());
  for (const auto& path : candidates) {
    const fs::path claimed = fs::path(dir_) / "claimed" / path.filename();
    if (!TryRename(path, claimed)) continue;  // lost the race; next item
    // rename(2) preserves mtime, so a claim would otherwise inherit the
    // file's CREATION time and look stale the instant the straggler timeout
    // elapses queue-wide.  Stamp the claim time; Heartbeat keeps it fresh.
    std::error_code ec;
    fs::last_write_time(claimed, fs::file_time_type::clock::now(), ec);
    try {
      return ItemFromJson(JsonValue::Parse(Slurp(claimed.string())));
    } catch (const std::exception&) {
      // Stolen between our rename and our read (a reclaimer judged the
      // pre-stamp mtime stale).  Someone else owns it now; keep looking.
      continue;
    }
  }
  return std::nullopt;
}

bool SweepWorkQueue::Heartbeat(const WorkItem& item) {
  std::error_code ec;
  fs::last_write_time(fs::path(dir_) / "claimed" / ItemFileName(item.id),
                      fs::file_time_type::clock::now(), ec);
  return !ec;  // false: completed or stolen — the run continues either way
}

void SweepWorkQueue::Complete(const WorkItem& item) {
  const std::string name = ItemFileName(item.id);
  // The item may have been reclaimed (we looked like a straggler) and even
  // completed by another worker; its shards are byte-identical to ours, so a
  // vanished source is success, not an error.
  TryRename(fs::path(dir_) / "claimed" / name, fs::path(dir_) / "done" / name);
}

std::size_t SweepWorkQueue::ReclaimStale(double age_seconds) {
  const auto now = fs::file_time_type::clock::now();
  std::size_t reclaimed = 0;
  for (const auto& entry : fs::directory_iterator(fs::path(dir_) / "claimed")) {
    if (!entry.is_regular_file()) continue;
    std::error_code ec;
    const auto mtime = fs::last_write_time(entry.path(), ec);
    if (ec) continue;  // vanished under us (completed or already reclaimed)
    const double age =
        std::chrono::duration<double>(now - mtime).count();
    if (age < age_seconds) continue;
    if (TryRename(entry.path(),
                  fs::path(dir_) / "todo" / entry.path().filename())) {
      ++reclaimed;
    }
  }
  return reclaimed;
}

bool SweepWorkQueue::Drained() const {
  return TodoCount() == 0 && ClaimedCount() == 0;
}

std::size_t SweepWorkQueue::TodoCount() const {
  return CountFiles(fs::path(dir_) / "todo");
}

std::size_t SweepWorkQueue::ClaimedCount() const {
  return CountFiles(fs::path(dir_) / "claimed");
}

std::size_t SweepWorkQueue::DoneCount() const {
  return CountFiles(fs::path(dir_) / "done");
}

std::string SweepWorkQueue::StagingDir(const std::string& worker_id,
                                       std::size_t item_id) const {
  char item[32];
  std::snprintf(item, sizeof(item), "item-%05zu", item_id);
  const fs::path staging =
      fs::path(dir_) / "staging" / (worker_id + "-" + item);
  fs::create_directories(staging);
  return staging.string();
}

}  // namespace sraps
