// Distributed sweep coordinator: expands a SweepSpec into a filesystem work
// queue (dist/work_queue.h), spawns N sraps_sweep_worker processes, steals
// work back from stragglers, and merges the workers' shard CSVs into the
// exact artifact set — rows-*.csv + aggregates.json + manifest.json — a
// single-process SweepRunner::Run would have written, byte for byte.
//
// The byte-identity discipline (shards are complete, index-ordered, and
// %.17g/%016x formatted regardless of producer) is what makes the whole tier
// safe: a worker can crash mid-item and the item is simply re-run; an item
// can be stolen and executed twice and the duplicate shard overwrites equal
// bytes; the merged aggregates are re-folded from the shard rows and land on
// the same JSON the in-process fold produces.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sweep/sweep_runner.h"
#include "sweep/sweep_spec.h"

namespace sraps {

struct DistributedSweepOptions {
  /// Worker processes to spawn (0 = run everything inline; still exercises
  /// the queue/merge path).
  unsigned workers = 2;
  /// Threads per worker process (SweepOptions::threads).
  unsigned threads_per_worker = 0;
  /// Workers run with the snapshot-tree executor (sweep/tree); output bytes
  /// are identical either way, only wall clock changes.
  bool tree = false;
  /// Scenarios per output shard; one work item covers `shards_per_item`
  /// consecutive shards.
  std::size_t shard_size = 256;
  std::size_t shards_per_item = 1;
  /// Claimed items older than this are returned to todo/ (work stealing on
  /// stragglers).  The coordinator applies it while waiting; workers also
  /// apply it between claims.
  double straggler_timeout_s = 30.0;
  /// Coordinator poll interval while workers run.
  double poll_seconds = 0.05;
  /// Worker binary; empty = "sraps_sweep_worker" next to this executable.
  std::string worker_binary;
  /// Fault injection for tests/nightly: SIGKILL the first worker as soon as
  /// any item has been claimed, then let stealing + the inline drain finish
  /// the sweep.  Output bytes must be unaffected.
  bool kill_first_worker = false;
};

struct DistributedSweepSummary {
  std::size_t total = 0;
  std::size_t ok_count = 0;
  std::size_t failed_count = 0;
  SweepAggregates aggregates;
  /// Merged shard files in `out_dir`, in shard-index order.
  std::vector<std::string> shard_paths;
  std::size_t workers_spawned = 0;
  std::size_t workers_killed = 0;   ///< fault injection only
  std::size_t items_total = 0;
  std::size_t items_reclaimed = 0;  ///< straggler/crash steals observed
  std::size_t items_inline = 0;     ///< drained by the coordinator itself
  double wall_seconds = 0.0;
};

/// Runs `spec` across worker processes coordinated through `work_dir` (a
/// fresh directory; reused contents are rejected) and writes the merged
/// whole-grid artifacts into `out_dir`.  The workload is resolved before the
/// manifest is written, so a calibrating sweep is fitted exactly once and
/// every worker replays the fitted spec.  Throws when the merge finds a
/// missing shard or an inconsistent row set.
DistributedSweepSummary RunDistributedSweep(const SweepSpec& spec,
                                            const std::string& work_dir,
                                            const std::string& out_dir,
                                            const DistributedSweepOptions& options = {});

/// Reconstructs the compact rows of one shard CSV (the worker output /
/// merge input).  Metric and fingerprint cells round-trip bit-exactly
/// (%.17g / %016x); axis values come back as raw cell strings, which is
/// enough for folding — the merge copies shard BYTES, it never re-renders
/// rows.  Exposed for tests and for external merge tooling.
std::vector<SweepRow> ParseShardCsv(const std::string& path,
                                    const SweepSpec& spec);

}  // namespace sraps
