#include "dist/sweep_worker.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>

#include "dist/work_queue.h"
#include "sweep/sweep_runner.h"

namespace sraps {

namespace fs = std::filesystem;

namespace {

/// Re-stamps the claimed item's mtime every `interval` while an item runs,
/// so a coordinator's straggler timeout only ever fires on workers that
/// actually stopped beating (died), not on live workers with long items.
class ClaimHeartbeat {
 public:
  ClaimHeartbeat(SweepWorkQueue& queue, const WorkItem& item, double interval)
      : thread_([this, &queue, item, interval] {
          std::unique_lock<std::mutex> lock(mu_);
          while (!stop_) {
            queue.Heartbeat(item);
            cv_.wait_for(lock, std::chrono::duration<double>(interval),
                         [this] { return stop_; });
          }
        }) {}

  ~ClaimHeartbeat() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

SweepWorkerReport RunSweepWorker(const std::string& work_dir,
                                 const SweepWorkerOptions& options) {
  SweepWorkQueue queue = SweepWorkQueue::Open(work_dir);
  std::string worker_id = options.worker_id;
  if (worker_id.empty()) worker_id = "w" + std::to_string(getpid());

  // One runner for the whole drain: the workload is resolved (dataset loaded
  // / already-fitted synthetic regenerated) once per process, not per item.
  SweepRunner runner(queue.LoadSpec());
  runner.ResolveWorkload();

  SweepWorkerReport report;
  while (options.max_items == 0 || report.items_completed < options.max_items) {
    if (options.straggler_timeout_s > 0) {
      queue.ReclaimStale(options.straggler_timeout_s);
    }
    std::optional<WorkItem> item = queue.Claim();
    if (!item) {
      // Nothing to claim.  If nothing is in flight either, the sweep is
      // drained; otherwise a straggler may die and its item reappear.
      if (queue.ClaimedCount() == 0) break;
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.poll_seconds));
      continue;
    }

    const std::string staging = queue.StagingDir(worker_id, item->id);
    SweepOptions run_options;
    run_options.threads = options.threads;
    run_options.output_dir = staging;
    run_options.shard_size = queue.config().shard_size;
    run_options.tree = queue.config().tree;
    run_options.scenario_begin = item->begin;
    run_options.scenario_end = item->end;
    run_options.write_aggregates = false;
    SweepSummary summary;
    {
      // An item can take arbitrarily long; without the beat, any straggler
      // timeout shorter than an item would steal work from live workers.
      ClaimHeartbeat beat(queue, *item, options.poll_seconds);
      summary = runner.Run(run_options);
    }
    report.scenarios_run += item->end - item->begin;

    // Publish: rename each complete shard into shards/.  rename(2) replaces
    // an existing destination atomically, and a duplicate (stolen item run
    // twice) writes byte-identical content, so overwriting is safe.
    std::size_t shards_this_item = 0;
    for (const std::string& shard : summary.shard_paths) {
      if (shard.empty()) continue;  // slots for shards outside this subrange
      const fs::path from(shard);
      fs::rename(from, fs::path(queue.ShardsDir()) / from.filename());
      ++shards_this_item;
    }
    report.shards_written += shards_this_item;
    fs::remove_all(staging);
    queue.Complete(*item);
    ++report.items_completed;
    if (options.verbose) {
      std::fprintf(stderr, "[%s] item %05zu: scenarios [%zu, %zu) -> %zu shard(s)\n",
                   worker_id.c_str(), item->id, item->begin, item->end,
                   shards_this_item);
    }
  }
  return report;
}

}  // namespace sraps
