// The worker side of a distributed sweep: attach to a work directory
// (dist/work_queue.h), claim shard-aligned scenario subranges, run each with
// the subrange SweepRunner path (write_aggregates=false), and publish the
// resulting rows-*.csv shards by atomic rename into shards/.  Because every
// shard is byte-identical no matter which worker (or how many threads)
// produced it, workers need no coordination beyond the claim rename, and a
// stolen-and-duplicated item just overwrites equal bytes.
#pragma once

#include <cstddef>
#include <string>

namespace sraps {

struct SweepWorkerOptions {
  /// Identifies this worker in staging paths and log lines; defaults to
  /// "w<pid>" when empty.
  std::string worker_id;
  /// Threads per claimed item (SweepOptions::threads); 0 = hardware.
  unsigned threads = 0;
  /// Sleep between empty polls while claimed/ is still non-empty (another
  /// worker may die and its items reappear in todo/).
  double poll_seconds = 0.2;
  /// When > 0, this worker also reclaims claimed items older than the
  /// timeout before each poll — workers steal from stragglers even without
  /// a live coordinator.
  double straggler_timeout_s = 0.0;
  /// Exit after completing this many items (0 = run until drained).  Lets
  /// tests and nightly kill-injection bound a worker's life deterministically.
  std::size_t max_items = 0;
  /// Print a one-line progress note per completed item to stderr.
  bool verbose = false;
};

struct SweepWorkerReport {
  std::size_t items_completed = 0;
  std::size_t scenarios_run = 0;
  std::size_t shards_written = 0;
};

/// Drains `work_dir` (or up to options.max_items) and returns what this
/// worker contributed.  Throws on a malformed work directory; per-scenario
/// failures become failed rows in the shards, exactly as in-process sweeps.
SweepWorkerReport RunSweepWorker(const std::string& work_dir,
                                 const SweepWorkerOptions& options = {});

}  // namespace sraps
