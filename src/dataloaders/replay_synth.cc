#include "dataloaders/replay_synth.h"

#include <algorithm>
#include <queue>
#include <set>
#include <stdexcept>

namespace sraps {

void SynthesizeRecordedSchedule(std::vector<Job>& jobs,
                                const ReplaySynthesisOptions& options) {
  if (options.total_nodes <= 0) {
    throw std::invalid_argument("SynthesizeRecordedSchedule: total_nodes <= 0");
  }
  const int usable =
      std::max(1, static_cast<int>(options.total_nodes * options.utilization_cap));
  Rng rng(options.seed);

  // FCFS by submit time.
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return jobs[a].submit_time < jobs[b].submit_time;
  });

  // Free node pool over virtual time: a min-heap of (end_time, nodes).
  struct Completion {
    SimTime t;
    std::vector<int> nodes;
    bool operator>(const Completion& o) const { return t > o.t; }
  };
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>> completions;
  std::set<int> free_nodes;
  for (int i = 0; i < usable; ++i) free_nodes.insert(i);

  // FCFS without backfill: starts are monotone in queue order, which also
  // keeps the virtual-time bookkeeping consistent (a job may never claim a
  // node freed after its own start).
  SimTime last_start = 0;
  bool first = true;
  for (std::size_t idx : order) {
    Job& job = jobs[idx];
    if (job.nodes_required > usable) {
      throw std::invalid_argument("SynthesizeRecordedSchedule: job " +
                                  std::to_string(job.id) + " needs " +
                                  std::to_string(job.nodes_required) + " > usable " +
                                  std::to_string(usable));
    }
    const SimDuration duration = job.recorded_end - job.recorded_start;
    if (duration <= 0) {
      throw std::invalid_argument("SynthesizeRecordedSchedule: job " +
                                  std::to_string(job.id) + " has no duration");
    }
    const SimDuration hold =
        options.max_hold > 0 ? rng.UniformInt(0, options.max_hold) : 0;
    SimTime t = job.submit_time + hold;
    if (!first) t = std::max(t, last_start);
    // Advance virtual time until enough nodes are free at t.
    while (true) {
      while (!completions.empty() && completions.top().t <= t) {
        for (int n : completions.top().nodes) free_nodes.insert(n);
        completions.pop();
      }
      if (static_cast<int>(free_nodes.size()) >= job.nodes_required) break;
      if (completions.empty()) {
        throw std::logic_error("SynthesizeRecordedSchedule: deadlock (no completions)");
      }
      t = std::max(t, completions.top().t);
    }
    std::vector<int> assigned;
    assigned.reserve(job.nodes_required);
    auto it = free_nodes.begin();
    for (int i = 0; i < job.nodes_required; ++i) {
      assigned.push_back(*it);
      it = free_nodes.erase(it);
    }
    job.recorded_start = t;
    job.recorded_end = t + duration;
    last_start = t;
    first = false;
    if (options.assign_node_lists) {
      job.recorded_nodes = assigned;
    } else {
      job.recorded_nodes.clear();
    }
    completions.push({job.recorded_end, std::move(assigned)});
  }
}

}  // namespace sraps
