// Shared traces.csv reader/writer for the trace-bearing datasets
// (Frontier 15 s, Marconi100/PM100 20 s).  Schema:
//   job_id, offset_s, cpu_util, gpu_util, node_power_w
// Any of the three value columns may be empty per row; empty columns simply
// do not contribute samples to the corresponding series.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "telemetry/trace_series.h"
#include "workload/job.h"

namespace sraps {

struct JobTraces {
  TraceSeries cpu_util;
  TraceSeries gpu_util;
  TraceSeries node_power_w;
};

/// Loads a traces.csv into per-job series.  Rows must be grouped by job and
/// offset-sorted within a job (the writers guarantee this; violations throw).
std::map<JobId, JobTraces> LoadTraceTable(const std::string& path);

/// Writes the traces of all jobs that have any, in the shared schema.
void SaveTraceTable(const std::string& path, const std::vector<Job>& jobs);

/// Attaches loaded traces to jobs in place (matching on job id).
void AttachTraces(std::vector<Job>& jobs, const std::map<JobId, JobTraces>& traces);

}  // namespace sraps
