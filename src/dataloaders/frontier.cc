#include "dataloaders/frontier.h"

#include <algorithm>
#include <filesystem>

#include "common/mathutil.h"
#include "config/system_config.h"
#include "dataloaders/jobs_io.h"
#include "dataloaders/replay_synth.h"
#include "dataloaders/trace_table.h"
#include "workload/synthetic.h"

namespace sraps {
namespace fs = std::filesystem;

std::vector<Job> FrontierLoader::Load(const std::string& path) const {
  fs::path root(path);
  fs::path jobs_csv = fs::is_directory(root) ? root / "jobs.csv" : root;
  std::vector<Job> jobs = ReadJobsCsv(jobs_csv.string());
  const fs::path traces_csv = jobs_csv.parent_path() / "traces.csv";
  if (fs::exists(traces_csv)) {
    AttachTraces(jobs, LoadTraceTable(traces_csv.string()));
  }
  return jobs;
}

double FrontierPriority(SimTime submit, int nodes) {
  // Modified FIFO: age dominates, node count boosts — the documented
  // leadership-class incentive (large jobs skip ahead).  Units: "seconds of
  // age equivalent"; 1000 nodes of request ~ 4 h of queue age.
  return -static_cast<double>(submit) + static_cast<double>(nodes) * 14.4;
}

std::vector<Job> GenerateFrontierDataset(const std::string& dir,
                                         const FrontierDatasetSpec& spec) {
  const SystemConfig config = MakeSystemConfig("frontier");

  SyntheticWorkloadSpec wl;
  wl.first_submit = 0;
  wl.horizon = spec.span;
  wl.arrival_rate_per_hour = spec.arrival_rate_per_hour;
  wl.max_nodes = config.TotalNodes();
  wl.mean_nodes_log2 = 6.0;  // leadership machine: jobs are hundreds of nodes
  wl.sd_nodes_log2 = 2.4;
  wl.runtime_mu = 8.8;
  wl.runtime_sigma = 1.3;
  wl.overestimate_factor = 1.7;
  wl.mean_cpu_util = 0.55;
  wl.mean_gpu_util = 0.7;  // GPU-dominant workloads
  wl.gpu_jobs = true;
  wl.trace_interval = config.telemetry_interval;  // 15 s cadence
  wl.num_accounts = 30;
  wl.seed = spec.seed;
  std::vector<Job> jobs = GenerateSyntheticWorkload(wl);
  for (Job& j : jobs) j.priority = FrontierPriority(j.submit_time, j.nodes_required);

  ReplaySynthesisOptions rs;
  rs.total_nodes = config.TotalNodes();
  rs.utilization_cap = spec.utilization_cap;
  rs.max_hold = spec.max_hold;
  rs.seed = spec.seed + 1;
  SynthesizeRecordedSchedule(jobs, rs);

  fs::create_directories(dir);
  WriteJobsCsv((fs::path(dir) / "jobs.csv").string(), jobs);
  SaveTraceTable((fs::path(dir) / "traces.csv").string(), jobs);
  return jobs;
}

std::vector<Job> GenerateFrontierFig6Scenario(const std::string& dir,
                                              const FrontierFig6Spec& spec) {
  const SystemConfig config = MakeSystemConfig("frontier");
  Rng rng(spec.seed);
  std::vector<Job> jobs;
  JobId next_id = 1;

  // Phase A: a busy mixed workload submitted over the first two hours —
  // enough demand to keep the machine near-full — with runtimes short
  // enough that the machine can drain for the heroes.
  SyntheticWorkloadSpec a;
  a.first_submit = 0;
  a.horizon = 2 * kHour;
  a.arrival_rate_per_hour = 220;
  a.max_nodes = 2048;
  a.mean_nodes_log2 = 5.5;
  a.sd_nodes_log2 = 2.0;
  a.runtime_mu = 8.4;  // median ~1.2 h, max clipped below
  a.runtime_sigma = 0.9;
  a.mean_cpu_util = 0.55;
  a.mean_gpu_util = 0.7;
  a.trace_interval = config.telemetry_interval;
  a.num_accounts = 16;
  a.seed = spec.seed + 1;
  for (Job j : GenerateSyntheticWorkload(a, next_id)) {
    // Clip phase-A runtimes so the drain completes within a few hours.
    const SimDuration runtime =
        std::min<SimDuration>(j.recorded_end - j.recorded_start, 3 * kHour + kHour / 2);
    j.recorded_end = j.recorded_start + runtime;
    j.time_limit = static_cast<SimDuration>(runtime * 1.5);
    next_id = std::max(next_id, j.id + 1);
    jobs.push_back(std::move(j));
  }

  // The three hero runs: full-system 9216-node jobs, submitted early (the
  // schedulers must clear space), high sustained GPU utilisation.
  const SimTime hero_submit = 90 * kMinute;
  std::vector<JobId> hero_ids;
  for (int k = 0; k < 3; ++k) {
    Job h;
    h.id = next_id++;
    h.name = "hero-" + std::to_string(k + 1);
    h.account = "acct_hero";  // dedicated flagship project: its accumulated
                              // behaviour is entirely hero-run shaped (§4.3)
    h.user = SyntheticUserName(0, k);
    h.submit_time = hero_submit + k * 5 * kMinute;
    h.nodes_required = spec.full_system_nodes;
    h.recorded_start = h.submit_time;  // placeholder; fixed below
    h.recorded_end = h.recorded_start + spec.hero_runtime;
    h.time_limit = static_cast<SimDuration>(spec.hero_runtime * 1.25);
    Rng hr = rng.Split();
    h.cpu_util = MakePhasedUtilTrace(hr, spec.hero_runtime, config.telemetry_interval,
                                     0.75, 0.03);
    h.gpu_util = MakePhasedUtilTrace(hr, spec.hero_runtime, config.telemetry_interval,
                                     0.95, 0.02);
    hero_ids.push_back(h.id);
    jobs.push_back(std::move(h));
  }

  // Phase B: the post-hero mix — varied sizes, lower utilisation, so total
  // power drops after the hero block (as in Fig. 6).
  SyntheticWorkloadSpec b;
  b.first_submit = 9 * kHour;
  b.horizon = spec.span - b.first_submit;
  b.arrival_rate_per_hour = 80;
  b.max_nodes = 3000;
  b.mean_nodes_log2 = 5.0;
  b.sd_nodes_log2 = 2.2;
  b.runtime_mu = 8.6;
  b.runtime_sigma = 1.0;
  b.mean_cpu_util = 0.45;
  b.mean_gpu_util = 0.5;  // lower-power tail
  b.trace_interval = config.telemetry_interval;
  b.num_accounts = 16;
  b.seed = spec.seed + 2;
  for (Job j : GenerateSyntheticWorkload(b, next_id)) {
    next_id = std::max(next_id, j.id + 1);
    jobs.push_back(std::move(j));
  }

  for (Job& j : jobs) j.priority = FrontierPriority(j.submit_time, j.nodes_required);

  // Recorded schedule: FCFS without backfill reproduces the production
  // behaviour — the machine drains for the heroes, runs them back to back,
  // then refills.
  std::stable_sort(jobs.begin(), jobs.end(), [](const Job& x, const Job& y) {
    return x.submit_time < y.submit_time;
  });
  ReplaySynthesisOptions rs;
  rs.total_nodes = config.TotalNodes();
  rs.utilization_cap = 1.0;  // the heroes need 9216 of 9600
  // Generous operator holds: the production schedule dawdles, which is what
  // lets S-RAPS place the hero runs earlier when rescheduling (§4.1).
  rs.max_hold = 50 * kMinute;
  rs.seed = spec.seed + 3;
  SynthesizeRecordedSchedule(jobs, rs);

  fs::create_directories(dir);
  WriteJobsCsv((fs::path(dir) / "jobs.csv").string(), jobs);
  SaveTraceTable((fs::path(dir) / "traces.csv").string(), jobs);
  return jobs;
}

}  // namespace sraps
