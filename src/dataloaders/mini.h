// Mini-system dataloader.  The 16-node `mini` config is the repo's test and
// walkthrough machine; this loader gives it the same dataset surface as the
// real systems so CLI recipes (`--generate mini`, `--system mini -f DIR`)
// work end to end without programmatic job injection.
//
// CSV schema (jobs.csv): the canonical jobs_io schema, plus a traces.csv in
// the shared trace-table schema.
#pragma once

#include <string>
#include <vector>

#include "dataloaders/dataloader.h"

namespace sraps {

class MiniLoader : public Dataloader {
 public:
  std::string system_name() const override { return "mini"; }
  std::vector<Job> Load(const std::string& path) const override;
};

/// Parameters for the synthetic mini dataset.
struct MiniDatasetSpec {
  SimDuration span = 1 * kDay;
  double arrival_rate_per_hour = 5;  ///< 120 jobs over the day, as quickstart
  std::uint64_t seed = 11;
  double utilization_cap = 0.8;
};

/// Writes jobs.csv + traces.csv under `dir` and returns the generated jobs.
std::vector<Job> GenerateMiniDataset(const std::string& dir,
                                     const MiniDatasetSpec& spec = {});

}  // namespace sraps
