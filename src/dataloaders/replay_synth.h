// Offline construction of a *feasible recorded schedule* for synthetic
// datasets.  Real datasets contain the schedule the production scheduler
// actually produced; replay mode re-enacts it exactly, so synthetic data
// must never oversubscribe nodes.  This list scheduler assigns each job a
// recorded start time and an exact node set, with tunable inefficiencies
// (per-job hold delays, an effective-utilisation cap) so the recorded
// schedule resembles a production machine at realistic load — leaving
// headroom the rescheduling policies can then exploit, as in Figs. 4-6.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "workload/job.h"

namespace sraps {

struct ReplaySynthesisOptions {
  int total_nodes = 0;           ///< machine size (required, > 0)
  double utilization_cap = 0.92; ///< fraction of nodes the recorded schedule may use
  SimDuration max_hold = 0;      ///< per-job uniform random hold before placement
  std::uint64_t seed = 7;
  bool assign_node_lists = true; ///< record exact node ids (replay enforcement)
};

/// Produces recorded_start/recorded_end (+ recorded_nodes when requested)
/// for every job, processing jobs FCFS by submit time.  Jobs keep their
/// duration (recorded_end - recorded_start must already be meaningful via
/// recorded_* fields set by the workload generator; the job's current
/// recorded duration is preserved).  Throws std::invalid_argument if a job
/// needs more nodes than the cap allows.
void SynthesizeRecordedSchedule(std::vector<Job>& jobs,
                                const ReplaySynthesisOptions& options);

}  // namespace sraps
