#include "dataloaders/jobs_io.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/csv.h"
#include "dataloaders/dataloader.h"

namespace sraps {
namespace {

std::string Num(double v) {
  std::ostringstream ss;
  ss.precision(10);
  ss << v;
  return ss.str();
}

}  // namespace

void WriteJobsCsv(const std::string& path, const std::vector<Job>& jobs,
                  const std::vector<bool>& shared_flags) {
  const bool with_shared = !shared_flags.empty();
  if (with_shared && shared_flags.size() != jobs.size()) {
    throw std::invalid_argument("WriteJobsCsv: shared_flags size mismatch");
  }
  std::vector<std::string> header = {"job_id", "user", "account", "submit_time",
                                     "start_time", "end_time", "time_limit",
                                     "num_nodes", "nodes_allocated", "priority",
                                     "avg_node_power_w"};
  if (with_shared) header.push_back("shared");
  CsvWriter w(std::move(header));
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& j = jobs[i];
    std::string avg_power;
    if (!j.node_power_w.empty() && j.node_power_w.is_constant()) {
      avg_power = Num(j.node_power_w.values().front());
    }
    std::vector<std::string> row = {
        std::to_string(j.id), j.user, j.account, std::to_string(j.submit_time),
        std::to_string(j.recorded_start), std::to_string(j.recorded_end),
        std::to_string(j.time_limit), std::to_string(j.nodes_required),
        loader_detail::FormatNodeList(j.recorded_nodes), Num(j.priority), avg_power};
    if (with_shared) row.push_back(shared_flags[i] ? "1" : "0");
    w.AddRow(std::move(row));
  }
  w.Save(path);
}

std::vector<Job> ReadJobsCsv(const std::string& path, bool filter_shared) {
  const CsvTable t = CsvTable::Load(path);
  const bool has_shared = t.ColumnIndex("shared").has_value();
  std::vector<Job> jobs;
  jobs.reserve(t.num_rows());
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    if (filter_shared && has_shared) {
      if (const auto s = t.GetInt(r, "shared"); s && *s != 0) continue;
    }
    Job j;
    j.id = t.GetInt(r, "job_id").value();
    j.user = t.Cell(r, "user");
    j.account = t.Cell(r, "account");
    j.submit_time = t.GetInt(r, "submit_time").value();
    j.recorded_start = t.GetInt(r, "start_time").value_or(-1);
    j.recorded_end = t.GetInt(r, "end_time").value_or(-1);
    j.time_limit = t.GetInt(r, "time_limit").value_or(0);
    j.nodes_required = static_cast<int>(t.GetInt(r, "num_nodes").value());
    j.recorded_nodes = loader_detail::ParseNodeList(t.Cell(r, "nodes_allocated"));
    j.priority = t.GetDouble(r, "priority").value_or(0.0);
    if (auto p = t.GetDouble(r, "avg_node_power_w")) {
      j.node_power_w = TraceSeries::Constant(*p);
    }
    j.name = "job-" + std::to_string(j.id);
    jobs.push_back(std::move(j));
  }
  return jobs;
}

}  // namespace sraps
