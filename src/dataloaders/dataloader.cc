#include "dataloaders/dataloader.h"

#include <stdexcept>

#include "dataloaders/adastra.h"
#include "dataloaders/frontier.h"
#include "dataloaders/fugaku.h"
#include "dataloaders/lassen.h"
#include "dataloaders/marconi.h"
#include "dataloaders/mini.h"

namespace sraps {

DataloaderRegistry& DataloaderRegistry::Instance() {
  static DataloaderRegistry registry;
  return registry;
}

void DataloaderRegistry::Register(std::unique_ptr<Dataloader> loader) {
  const std::string name = loader->system_name();
  loaders_.Register(name, std::move(loader));
}

const Dataloader& DataloaderRegistry::Get(const std::string& system) const {
  return *loaders_.Get(system);
}

bool DataloaderRegistry::Has(const std::string& system) const {
  return loaders_.Has(system);
}

std::vector<std::string> DataloaderRegistry::Names() const {
  return loaders_.Names();
}

void RegisterBuiltinDataloaders() {
  auto& reg = DataloaderRegistry::Instance();
  reg.Register(std::make_unique<FrontierLoader>());
  reg.Register(std::make_unique<MarconiLoader>());
  reg.Register(std::make_unique<FugakuLoader>());
  reg.Register(std::make_unique<LassenLoader>());
  reg.Register(std::make_unique<AdastraLoader>());
  reg.Register(std::make_unique<MiniLoader>());
}

namespace loader_detail {

std::vector<int> ParseNodeList(const std::string& cell) {
  std::vector<int> nodes;
  std::string token;
  for (char c : cell) {
    if (c == '|') {
      if (!token.empty()) {
        nodes.push_back(std::stoi(token));
        token.clear();
      }
    } else {
      token += c;
    }
  }
  if (!token.empty()) nodes.push_back(std::stoi(token));
  return nodes;
}

std::string FormatNodeList(const std::vector<int>& nodes) {
  std::string out;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i) out += '|';
    out += std::to_string(nodes[i]);
  }
  return out;
}

}  // namespace loader_detail
}  // namespace sraps
