// Lassen / LAST dataloader.  The Livermore Archive for System Telemetry
// publishes 1.47 M Lassen jobs as allocation + job-step summaries with
// accumulated energy and network tx/rx — no time series.  Power traces are
// reconstructed as constants from energy / (runtime * nodes).
//
// CSV schema (jobs.csv):
//   job_id,user,account,submit_time,start_time,end_time,time_limit,
//   num_nodes,energy_j,net_tx_gb,net_rx_gb,priority
#pragma once

#include <string>
#include <vector>

#include "dataloaders/dataloader.h"

namespace sraps {

class LassenLoader : public Dataloader {
 public:
  std::string system_name() const override { return "lassen"; }
  std::vector<Job> Load(const std::string& path) const override;
};

struct LassenDatasetSpec {
  SimDuration span = 5 * kDay;
  double arrival_rate_per_hour = 90;  ///< LSF throughput machine: many jobs
  std::uint64_t seed = 26;
  double utilization_cap = 0.88;
};

std::vector<Job> GenerateLassenDataset(const std::string& dir,
                                       const LassenDatasetSpec& spec = {});

}  // namespace sraps
