// Canonical jobs.csv reader/writer shared by the trace-bearing loaders
// (Frontier, Marconi100).  Columns:
//   job_id,user,account,submit_time,start_time,end_time,time_limit,
//   num_nodes,nodes_allocated,priority,avg_node_power_w[,shared]
// nodes_allocated is a '|'-separated node-id list and may be empty;
// avg_node_power_w may be empty for jobs carrying full traces.  The optional
// `shared` column marks shared-node jobs (PM100 contains them; the model
// does not support node sharing, so loaders filter them — §2.2).
#pragma once

#include <string>
#include <vector>

#include "workload/job.h"

namespace sraps {

/// Writes jobs; when `shared_flags` is non-empty (same length as jobs) a
/// `shared` column is emitted.
void WriteJobsCsv(const std::string& path, const std::vector<Job>& jobs,
                  const std::vector<bool>& shared_flags = {});

/// Reads jobs.  When `filter_shared` is set and the file has a `shared`
/// column, shared-node jobs are skipped (the paper's PM100 pre-filter).
std::vector<Job> ReadJobsCsv(const std::string& path, bool filter_shared = false);

}  // namespace sraps
