// Dataloader abstraction (§3.2.2): a dataloader parses one system's
// telemetry into the engine's job list — submit/start/end times, time limit,
// node counts or exact node sets, and whatever power/utilisation telemetry
// the dataset offers (full traces for Frontier/Marconi100, scalar summaries
// for Fugaku/Lassen/Adastra).  Loaders are registered by system name,
// mirroring the paper's `--system` plugin mechanism.
//
// Offline substitution: the Zenodo parquet files are represented as CSV
// files with the same column semantics; each loader ships a deterministic
// synthetic generator that writes a dataset-shaped file so the full parse →
// replay → reschedule pipeline is exercised end to end (see DESIGN.md).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/registry.h"
#include "config/system_config.h"
#include "workload/job.h"

namespace sraps {

class Dataloader {
 public:
  virtual ~Dataloader() = default;

  /// The `--system` name this loader serves.
  virtual std::string system_name() const = 0;

  /// Parses the dataset rooted at `path` (a jobs.csv file, or a directory
  /// containing jobs.csv and optionally traces.csv).  Throws
  /// std::runtime_error on malformed data.
  virtual std::vector<Job> Load(const std::string& path) const = 0;
};

/// Registry keyed by system name (plugin mechanism), backed by the unified
/// NamedRegistry used for schedulers, policies, and backfill strategies.
class DataloaderRegistry {
 public:
  static DataloaderRegistry& Instance();

  void Register(std::unique_ptr<Dataloader> loader);
  /// Throws std::invalid_argument listing the registered systems.
  const Dataloader& Get(const std::string& system) const;
  bool Has(const std::string& system) const;
  std::vector<std::string> Names() const;

 private:
  NamedRegistry<std::unique_ptr<Dataloader>> loaders_{"dataloader"};
};

/// Registers the five built-in loaders (frontier, marconi100, fugaku,
/// lassen, adastraMI250).  Idempotent.
void RegisterBuiltinDataloaders();

// --- shared column helpers used by the concrete loaders --------------------
namespace loader_detail {

/// Parses a '|'-separated node list ("3|17|42") into node ids.
std::vector<int> ParseNodeList(const std::string& cell);
/// Joins node ids with '|'.
std::string FormatNodeList(const std::vector<int>& nodes);

}  // namespace loader_detail
}  // namespace sraps
