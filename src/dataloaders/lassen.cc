#include "dataloaders/lassen.h"

#include <cmath>
#include <filesystem>
#include <sstream>

#include "common/csv.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "config/system_config.h"
#include "dataloaders/replay_synth.h"
#include "workload/synthetic.h"

namespace sraps {
namespace fs = std::filesystem;
namespace {

std::string Num(double v) {
  std::ostringstream ss;
  ss.precision(10);
  ss << v;
  return ss.str();
}

}  // namespace

std::vector<Job> LassenLoader::Load(const std::string& path) const {
  fs::path root(path);
  fs::path jobs_csv = fs::is_directory(root) ? root / "jobs.csv" : root;
  const CsvTable t = CsvTable::Load(jobs_csv.string());
  std::vector<Job> jobs;
  jobs.reserve(t.num_rows());
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    Job j;
    j.id = t.GetInt(r, "job_id").value();
    j.user = t.Cell(r, "user");
    j.account = t.Cell(r, "account");
    j.submit_time = t.GetInt(r, "submit_time").value();
    j.recorded_start = t.GetInt(r, "start_time").value_or(-1);
    j.recorded_end = t.GetInt(r, "end_time").value_or(-1);
    j.time_limit = t.GetInt(r, "time_limit").value_or(0);
    j.nodes_required = static_cast<int>(t.GetInt(r, "num_nodes").value());
    j.priority = t.GetDouble(r, "priority").value_or(0.0);
    j.name = "lassen-" + std::to_string(j.id);
    if (auto e = t.GetDouble(r, "energy_j")) {
      if (j.recorded_start >= 0 && j.recorded_end > j.recorded_start &&
          j.nodes_required > 0) {
        const double runtime = static_cast<double>(j.recorded_end - j.recorded_start);
        j.node_power_w = TraceSeries::Constant(*e / (runtime * j.nodes_required));
      }
    }
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::vector<Job> GenerateLassenDataset(const std::string& dir,
                                       const LassenDatasetSpec& spec) {
  const SystemConfig config = MakeSystemConfig("lassen");
  Rng rng(spec.seed);

  SyntheticWorkloadSpec wl;
  wl.first_submit = 0;
  wl.horizon = spec.span;
  wl.arrival_rate_per_hour = spec.arrival_rate_per_hour;
  wl.max_nodes = 256;  // LAST jobs are overwhelmingly small
  wl.mean_nodes_log2 = 1.5;
  wl.sd_nodes_log2 = 1.6;
  wl.runtime_mu = 7.8;  // many short jobs (LSF throughput workload)
  wl.runtime_sigma = 1.4;
  wl.overestimate_factor = 2.2;
  wl.gpu_jobs = true;
  wl.trace_interval = config.telemetry_interval;
  wl.num_accounts = 24;
  wl.seed = spec.seed;
  std::vector<Job> jobs = GenerateSyntheticWorkload(wl);

  // LAST provides summaries only: collapse the generated traces to a
  // constant power level so the loader sees exactly what LAST offers.
  const NodePowerSpec& node = config.machines[0].node_power;
  for (Job& j : jobs) {
    const SimDuration runtime = j.recorded_end - j.recorded_start;
    const double cpu = j.cpu_util.empty() ? 0.5 : j.cpu_util.MeanOver(runtime);
    const double gpu = j.gpu_util.empty() ? 0.0 : j.gpu_util.MeanOver(runtime);
    const double p = node.IdleW() +
                     node.cpus_per_node * cpu * (node.cpu_max_w - node.cpu_idle_w) +
                     node.gpus_per_node * gpu * (node.gpu_max_w - node.gpu_idle_w);
    j.node_power_w = TraceSeries::Constant(p);
    j.cpu_util = TraceSeries();
    j.gpu_util = TraceSeries();
  }

  ReplaySynthesisOptions rs;
  rs.total_nodes = config.TotalNodes();
  rs.utilization_cap = spec.utilization_cap;
  rs.max_hold = 30 * kMinute;
  rs.seed = spec.seed + 1;
  rs.assign_node_lists = false;
  SynthesizeRecordedSchedule(jobs, rs);

  fs::create_directories(dir);
  CsvWriter w({"job_id", "user", "account", "submit_time", "start_time", "end_time",
               "time_limit", "num_nodes", "energy_j", "net_tx_gb", "net_rx_gb",
               "priority"});
  for (const Job& j : jobs) {
    const double runtime = static_cast<double>(j.recorded_end - j.recorded_start);
    const double energy = j.node_power_w.values().front() * runtime * j.nodes_required;
    // Network volume loosely correlated with job size — LAST's distinguishing
    // columns, carried through so downstream feature extraction can use them.
    const double tx = j.nodes_required * runtime / 3600.0 * rng.Uniform(0.5, 8.0);
    const double rx = tx * rng.Uniform(0.7, 1.3);
    w.AddRow({std::to_string(j.id), j.user, j.account, std::to_string(j.submit_time),
              std::to_string(j.recorded_start), std::to_string(j.recorded_end),
              std::to_string(j.time_limit), std::to_string(j.nodes_required),
              Num(energy), Num(tx), Num(rx), Num(j.priority)});
  }
  w.Save((fs::path(dir) / "jobs.csv").string());
  return jobs;
}

}  // namespace sraps
