// Adastra dataloader (Cirou's "Adastra jobs MI250 15 days" dataset).  CINES
// published 15 days of the 356-node MI250X partition: per-job average node
// power, memory power, and CPU power.  GPU power is not provided but is
// derivable as node - cpu - memory (as the paper notes).  The system runs
// Slurm with no stated policy; utilisation is low, which is why Fig. 5's
// rescheduled curves all overlap.
//
// CSV schema (jobs.csv):
//   job_id,user,account,submit_time,start_time,end_time,time_limit,
//   num_nodes,node_power_w,cpu_power_w,mem_power_w,priority
#pragma once

#include <string>
#include <vector>

#include "dataloaders/dataloader.h"

namespace sraps {

class AdastraLoader : public Dataloader {
 public:
  std::string system_name() const override { return "adastraMI250"; }
  std::vector<Job> Load(const std::string& path) const override;
};

struct AdastraDatasetSpec {
  SimDuration span = 15 * kDay;  ///< the full published window
  double arrival_rate_per_hour = 9;  ///< low-load system (Fig. 5)
  std::uint64_t seed = 14;
  double utilization_cap = 0.8;
};

std::vector<Job> GenerateAdastraDataset(const std::string& dir,
                                        const AdastraDatasetSpec& spec = {});

/// GPU power derived from the dataset's columns: node - cpu - mem, floored
/// at zero (the derivation the paper describes).
double DeriveAdastraGpuPowerW(double node_w, double cpu_w, double mem_w);

}  // namespace sraps
