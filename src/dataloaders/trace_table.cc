#include "dataloaders/trace_table.h"

#include <array>
#include <sstream>
#include <stdexcept>

#include "common/csv.h"

namespace sraps {
namespace {

struct SeriesBuilder {
  std::vector<SimDuration> offsets;
  std::vector<double> values;

  void Add(SimDuration offset, double v) {
    offsets.push_back(offset);
    values.push_back(v);
  }
  TraceSeries Build() && {
    if (offsets.empty()) return TraceSeries();
    return TraceSeries(std::move(offsets), std::move(values));
  }
};

std::string Num(double v) {
  std::ostringstream ss;
  ss.precision(10);
  ss << v;
  return ss.str();
}

}  // namespace

std::map<JobId, JobTraces> LoadTraceTable(const std::string& path) {
  const CsvTable table = CsvTable::Load(path);
  std::map<JobId, JobTraces> result;
  std::map<JobId, SeriesBuilder> cpu, gpu, power;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    const auto id_opt = table.GetInt(r, "job_id");
    const auto off_opt = table.GetInt(r, "offset_s");
    if (!id_opt || !off_opt) {
      throw std::runtime_error("traces.csv: row " + std::to_string(r) +
                               " missing job_id/offset_s");
    }
    const JobId id = *id_opt;
    const SimDuration off = *off_opt;
    if (auto v = table.GetDouble(r, "cpu_util")) cpu[id].Add(off, *v);
    if (auto v = table.GetDouble(r, "gpu_util")) gpu[id].Add(off, *v);
    if (auto v = table.GetDouble(r, "node_power_w")) power[id].Add(off, *v);
  }
  for (auto& [id, b] : cpu) result[id].cpu_util = std::move(b).Build();
  for (auto& [id, b] : gpu) result[id].gpu_util = std::move(b).Build();
  for (auto& [id, b] : power) result[id].node_power_w = std::move(b).Build();
  return result;
}

void SaveTraceTable(const std::string& path, const std::vector<Job>& jobs) {
  CsvWriter w({"job_id", "offset_s", "cpu_util", "gpu_util", "node_power_w"});
  for (const Job& job : jobs) {
    // Merge the offsets of all three series so each row can carry samples
    // from whichever series has one at that offset.
    std::map<SimDuration, std::array<std::string, 3>> rows;
    auto add = [&](const TraceSeries& s, int slot) {
      if (s.empty() || s.is_constant()) return;
      for (std::size_t i = 0; i < s.size(); ++i) {
        rows[s.offsets()[i]][slot] = Num(s.values()[i]);
      }
    };
    add(job.cpu_util, 0);
    add(job.gpu_util, 1);
    add(job.node_power_w, 2);
    for (const auto& [off, cells] : rows) {
      w.AddRow({std::to_string(job.id), std::to_string(off), cells[0], cells[1],
                cells[2]});
    }
  }
  w.Save(path);
}

void AttachTraces(std::vector<Job>& jobs, const std::map<JobId, JobTraces>& traces) {
  for (Job& job : jobs) {
    auto it = traces.find(job.id);
    if (it == traces.end()) continue;
    if (!it->second.cpu_util.empty()) job.cpu_util = it->second.cpu_util;
    if (!it->second.gpu_util.empty()) job.gpu_util = it->second.gpu_util;
    if (!it->second.node_power_w.empty()) job.node_power_w = it->second.node_power_w;
  }
}

}  // namespace sraps
