#include "dataloaders/mini.h"

#include <filesystem>

#include "config/system_config.h"
#include "dataloaders/jobs_io.h"
#include "dataloaders/replay_synth.h"
#include "dataloaders/trace_table.h"
#include "workload/synthetic.h"

namespace sraps {
namespace fs = std::filesystem;

std::vector<Job> MiniLoader::Load(const std::string& path) const {
  fs::path root(path);
  fs::path jobs_csv = fs::is_directory(root) ? root / "jobs.csv" : root;
  std::vector<Job> jobs = ReadJobsCsv(jobs_csv.string());
  const fs::path traces_csv = jobs_csv.parent_path() / "traces.csv";
  if (fs::exists(traces_csv)) {
    AttachTraces(jobs, LoadTraceTable(traces_csv.string()));
  }
  return jobs;
}

std::vector<Job> GenerateMiniDataset(const std::string& dir,
                                     const MiniDatasetSpec& spec) {
  const SystemConfig config = MakeSystemConfig("mini");

  SyntheticWorkloadSpec wl;
  wl.first_submit = 0;
  wl.horizon = spec.span;
  wl.arrival_rate_per_hour = spec.arrival_rate_per_hour;
  wl.max_nodes = config.TotalNodes() / 2;
  wl.mean_nodes_log2 = 1.5;
  wl.runtime_mu = 8.0;
  wl.runtime_sigma = 1.0;
  wl.gpu_jobs = true;  // half the mini nodes are the "gpu" class
  wl.trace_interval = config.telemetry_interval;
  wl.num_accounts = 4;
  wl.seed = spec.seed;
  std::vector<Job> jobs = GenerateSyntheticWorkload(wl);

  ReplaySynthesisOptions rs;
  rs.total_nodes = config.TotalNodes();
  rs.utilization_cap = spec.utilization_cap;
  rs.seed = spec.seed + 1;
  rs.assign_node_lists = true;
  SynthesizeRecordedSchedule(jobs, rs);

  fs::create_directories(dir);
  WriteJobsCsv((fs::path(dir) / "jobs.csv").string(), jobs);
  SaveTraceTable((fs::path(dir) / "traces.csv").string(), jobs);
  return jobs;
}

}  // namespace sraps
