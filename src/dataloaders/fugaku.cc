#include "dataloaders/fugaku.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <sstream>

#include "common/csv.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "dataloaders/replay_synth.h"
#include "workload/synthetic.h"

namespace sraps {
namespace fs = std::filesystem;
namespace {

std::string Num(double v) {
  std::ostringstream ss;
  ss.precision(10);
  ss << v;
  return ss.str();
}

const char* ArchetypeName(FugakuArchetype a) {
  switch (a) {
    case FugakuArchetype::kComputeBound: return "compute";
    case FugakuArchetype::kMemoryBound: return "memory";
    case FugakuArchetype::kDebug: return "debug";
    case FugakuArchetype::kCapability: return "capability";
    case FugakuArchetype::kEnsemble: return "ensemble";
  }
  return "?";
}

struct ArchetypeParams {
  FugakuArchetype kind;
  double weight;          ///< mix fraction
  double nodes_log2_mu;   ///< node count ~ 2^N(mu, sd)
  double nodes_log2_sd;
  double runtime_mu;      ///< runtime ~ LogNormal
  double runtime_sigma;
  double power_mu_w;      ///< per-node average power ~ N(mu, sd), clamped
  double power_sd_w;
};

// A64FX node: idle ~100 W, peak ~230 W (see config).  Archetypes spread
// across that range so clustering has signal.
const ArchetypeParams kArchetypes[] = {
    {FugakuArchetype::kComputeBound, 0.25, 4.0, 1.5, 9.2, 0.8, 205.0, 12.0},
    {FugakuArchetype::kMemoryBound, 0.25, 4.0, 1.5, 9.4, 0.8, 160.0, 10.0},
    {FugakuArchetype::kDebug, 0.20, 0.8, 0.8, 6.0, 0.8, 120.0, 10.0},
    {FugakuArchetype::kCapability, 0.10, 8.0, 1.2, 8.8, 0.7, 190.0, 15.0},
    {FugakuArchetype::kEnsemble, 0.20, 2.0, 1.0, 7.8, 0.6, 150.0, 12.0},
};

}  // namespace

SystemConfig FugakuSliceConfig(int nodes) {
  SystemConfig c = MakeSystemConfig("fugaku");
  c.machines[0].num_nodes = nodes;
  c.cooling.design_it_load_kw *= static_cast<double>(nodes) / 158976.0;
  return c;
}

std::vector<Job> FugakuLoader::Load(const std::string& path) const {
  fs::path root(path);
  fs::path jobs_csv = fs::is_directory(root) ? root / "jobs.csv" : root;
  const CsvTable t = CsvTable::Load(jobs_csv.string());
  std::vector<Job> jobs;
  jobs.reserve(t.num_rows());
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    Job j;
    j.id = t.GetInt(r, "job_id").value();
    j.user = t.Cell(r, "usr");
    j.account = t.Cell(r, "acct");
    j.submit_time = t.GetInt(r, "submit_time").value();
    j.recorded_start = t.GetInt(r, "start_time").value_or(-1);
    j.recorded_end = t.GetInt(r, "end_time").value_or(-1);
    j.time_limit = t.GetInt(r, "time_limit").value_or(0);
    j.nodes_required = static_cast<int>(t.GetInt(r, "nnumr").value());
    j.priority = t.GetDouble(r, "priority").value_or(0.0);
    j.name = t.Cell(r, "perf_class") + "-" + std::to_string(j.id);
    // Power telemetry: prefer the average power column; fall back to
    // energy / (runtime * nodes) when only energy is present.
    if (auto p = t.GetDouble(r, "avg_power_w")) {
      j.node_power_w = TraceSeries::Constant(*p);
    } else if (auto e = t.GetDouble(r, "energy_j")) {
      if (j.recorded_start >= 0 && j.recorded_end > j.recorded_start &&
          j.nodes_required > 0) {
        const double runtime =
            static_cast<double>(j.recorded_end - j.recorded_start);
        j.node_power_w =
            TraceSeries::Constant(*e / (runtime * j.nodes_required));
      }
    }
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::vector<Job> GenerateFugakuDataset(const std::string& dir,
                                       const FugakuDatasetSpec& spec) {
  Rng rng(spec.seed);
  std::vector<double> weights;
  for (const auto& a : kArchetypes) weights.push_back(a.weight);

  std::vector<Job> jobs;
  JobId next_id = 1;
  double t = 0.0;
  while (true) {
    const bool high = static_cast<SimTime>(t) >= spec.high_load_start;
    const double rate =
        (high ? spec.high_rate_per_hour : spec.low_rate_per_hour) / 3600.0;
    t += rng.Exponential(rate);
    const SimTime submit = static_cast<SimTime>(t);
    if (submit >= spec.span) break;

    const ArchetypeParams& arch = kArchetypes[rng.Categorical(weights)];
    Job j;
    j.id = next_id++;
    const int acct = static_cast<int>(rng.UniformInt(0, 23));
    j.account = SyntheticAccountName(acct);
    j.user = SyntheticUserName(acct, static_cast<int>(rng.UniformInt(0, 3)));
    j.submit_time = submit;
    const double raw_nodes =
        std::pow(2.0, rng.Normal(arch.nodes_log2_mu, arch.nodes_log2_sd));
    j.nodes_required = static_cast<int>(
        Clamp(std::round(raw_nodes), 1.0, spec.scale_nodes * 0.5));
    const auto runtime = static_cast<SimDuration>(
        Clamp(rng.LogNormal(arch.runtime_mu, arch.runtime_sigma), 120.0, 2.0 * kDay));
    j.recorded_start = submit;
    j.recorded_end = submit + runtime;
    j.time_limit = static_cast<SimDuration>(runtime * rng.Uniform(1.2, 2.5));
    const double power = Clamp(rng.Normal(arch.power_mu_w, arch.power_sd_w), 80.0, 240.0);
    j.node_power_w = TraceSeries::Constant(power);
    j.priority = rng.Uniform(0.0, 100.0);
    j.name = std::string(ArchetypeName(arch.kind)) + "-" + std::to_string(j.id);
    jobs.push_back(std::move(j));
  }

  ReplaySynthesisOptions rs;
  rs.total_nodes = spec.scale_nodes;
  rs.utilization_cap = spec.utilization_cap;
  rs.max_hold = 20 * kMinute;
  rs.seed = spec.seed + 1;
  rs.assign_node_lists = false;  // F-Data carries no node placements
  SynthesizeRecordedSchedule(jobs, rs);

  fs::create_directories(dir);
  CsvWriter w({"job_id", "usr", "acct", "submit_time", "start_time", "end_time",
               "time_limit", "nnumr", "energy_j", "avg_power_w", "min_power_w",
               "max_power_w", "perf_class", "priority"});
  for (const Job& j : jobs) {
    const double power = j.node_power_w.values().front();
    const double runtime = static_cast<double>(j.recorded_end - j.recorded_start);
    const double energy = power * runtime * j.nodes_required;
    // The dataset reports min/max node power; approximate a +-8 % band.
    const std::string perf_class = j.name.substr(0, j.name.find('-'));
    w.AddRow({std::to_string(j.id), j.user, j.account, std::to_string(j.submit_time),
              std::to_string(j.recorded_start), std::to_string(j.recorded_end),
              std::to_string(j.time_limit), std::to_string(j.nodes_required),
              Num(energy), Num(power), Num(power * 0.92), Num(power * 1.08),
              perf_class, Num(j.priority)});
  }
  w.Save((fs::path(dir) / "jobs.csv").string());
  return jobs;
}

}  // namespace sraps
