#include "dataloaders/adastra.h"

#include <algorithm>
#include <array>
#include <filesystem>
#include <sstream>

#include "common/csv.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "config/system_config.h"
#include "dataloaders/replay_synth.h"
#include "workload/synthetic.h"

namespace sraps {
namespace fs = std::filesystem;
namespace {

std::string Num(double v) {
  std::ostringstream ss;
  ss.precision(10);
  ss << v;
  return ss.str();
}

}  // namespace

double DeriveAdastraGpuPowerW(double node_w, double cpu_w, double mem_w) {
  return std::max(0.0, node_w - cpu_w - mem_w);
}

std::vector<Job> AdastraLoader::Load(const std::string& path) const {
  fs::path root(path);
  fs::path jobs_csv = fs::is_directory(root) ? root / "jobs.csv" : root;
  const CsvTable t = CsvTable::Load(jobs_csv.string());
  std::vector<Job> jobs;
  jobs.reserve(t.num_rows());
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    Job j;
    j.id = t.GetInt(r, "job_id").value();
    j.user = t.Cell(r, "user");
    j.account = t.Cell(r, "account");
    j.submit_time = t.GetInt(r, "submit_time").value();
    j.recorded_start = t.GetInt(r, "start_time").value_or(-1);
    j.recorded_end = t.GetInt(r, "end_time").value_or(-1);
    j.time_limit = t.GetInt(r, "time_limit").value_or(0);
    j.nodes_required = static_cast<int>(t.GetInt(r, "num_nodes").value());
    j.priority = t.GetDouble(r, "priority").value_or(0.0);
    j.name = "adastra-" + std::to_string(j.id);
    if (auto p = t.GetDouble(r, "node_power_w")) {
      j.node_power_w = TraceSeries::Constant(*p);
    }
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::vector<Job> GenerateAdastraDataset(const std::string& dir,
                                        const AdastraDatasetSpec& spec) {
  const SystemConfig config = MakeSystemConfig("adastraMI250");
  Rng rng(spec.seed);

  SyntheticWorkloadSpec wl;
  wl.first_submit = 0;
  wl.horizon = spec.span;
  wl.arrival_rate_per_hour = spec.arrival_rate_per_hour;
  wl.max_nodes = 128;
  wl.mean_nodes_log2 = 2.0;
  wl.sd_nodes_log2 = 1.5;
  wl.runtime_mu = 9.0;  // longer jobs, low throughput
  wl.runtime_sigma = 1.2;
  wl.overestimate_factor = 1.5;
  wl.gpu_jobs = true;
  wl.trace_interval = config.telemetry_interval;
  wl.num_accounts = 10;
  wl.seed = spec.seed;
  std::vector<Job> jobs = GenerateSyntheticWorkload(wl);

  // Collapse traces to the dataset's per-job average component powers.
  const NodePowerSpec& node = config.machines[0].node_power;
  std::vector<std::array<double, 3>> component_powers;  // node, cpu, mem
  component_powers.reserve(jobs.size());
  for (Job& j : jobs) {
    const SimDuration runtime = j.recorded_end - j.recorded_start;
    const double cpu_u = j.cpu_util.empty() ? 0.4 : j.cpu_util.MeanOver(runtime);
    const double gpu_u = j.gpu_util.empty() ? 0.0 : j.gpu_util.MeanOver(runtime);
    const double cpu_w = node.cpus_per_node *
                         (node.cpu_idle_w + cpu_u * (node.cpu_max_w - node.cpu_idle_w));
    const double gpu_w = node.gpus_per_node *
                         (node.gpu_idle_w + gpu_u * (node.gpu_max_w - node.gpu_idle_w));
    const double mem_w = node.mem_w * rng.Uniform(0.8, 1.2);
    const double node_w = node.idle_w + node.nic_w + cpu_w + gpu_w + mem_w;
    j.node_power_w = TraceSeries::Constant(node_w);
    j.cpu_util = TraceSeries();
    j.gpu_util = TraceSeries();
    component_powers.push_back({node_w, cpu_w, mem_w});
  }

  ReplaySynthesisOptions rs;
  rs.total_nodes = config.TotalNodes();
  rs.utilization_cap = spec.utilization_cap;
  rs.max_hold = 15 * kMinute;
  rs.seed = spec.seed + 1;
  rs.assign_node_lists = false;
  SynthesizeRecordedSchedule(jobs, rs);

  fs::create_directories(dir);
  CsvWriter w({"job_id", "user", "account", "submit_time", "start_time", "end_time",
               "time_limit", "num_nodes", "node_power_w", "cpu_power_w", "mem_power_w",
               "priority"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& j = jobs[i];
    const auto& [node_w, cpu_w, mem_w] = component_powers[i];
    w.AddRow({std::to_string(j.id), j.user, j.account, std::to_string(j.submit_time),
              std::to_string(j.recorded_start), std::to_string(j.recorded_end),
              std::to_string(j.time_limit), std::to_string(j.nodes_required),
              Num(node_w), Num(cpu_w), Num(mem_w), Num(j.priority)});
  }
  w.Save((fs::path(dir) / "jobs.csv").string());
  return jobs;
}

}  // namespace sraps
