// Marconi100 / PM100 dataloader.  The PM100 dataset (Antici et al., SC-W'23)
// is a pre-curated job-power dataset from CINECA's 980-node Marconi100:
// per-job CPU, memory and node power traces at 20 s cadence.  Shared-node
// jobs are filtered (unsupported by the model, as in the paper), so replay
// will not reach the machine's full recorded utilisation.
//
// CSV schema (jobs.csv):
//   job_id,user,account,submit_time,start_time,end_time,time_limit,
//   num_nodes,nodes_allocated,priority,avg_node_power_w
// plus a traces.csv in the shared trace-table schema.
#pragma once

#include <string>
#include <vector>

#include "dataloaders/dataloader.h"

namespace sraps {

class MarconiLoader : public Dataloader {
 public:
  std::string system_name() const override { return "marconi100"; }
  std::vector<Job> Load(const std::string& path) const override;
};

/// Parameters for the synthetic PM100-shaped dataset.
struct MarconiDatasetSpec {
  SimDuration span = 3 * kDay;      ///< dataset time span
  double arrival_rate_per_hour = 55;  ///< busy system, queue builds up
  std::uint64_t seed = 100;
  double utilization_cap = 0.85;    ///< recorded schedule leaves headroom
  SimDuration max_hold = 45 * kMinute;  ///< production-scheduler dawdling
};

/// Writes jobs.csv + traces.csv under `dir` and returns the generated jobs.
std::vector<Job> GenerateMarconiDataset(const std::string& dir,
                                        const MarconiDatasetSpec& spec = {});

}  // namespace sraps
