// Fugaku / F-Data dataloader.  F-Data (Antici et al. 2024) is a job-summary
// dataset: per-job energy, node power (min/max/avg), performance counters
// and a derived performance class (compute- vs memory-bound).  No time
// series — loaders build constant power traces from the averages.
//
// CSV schema (jobs.csv):
//   job_id,usr,acct,submit_time,start_time,end_time,time_limit,nnumr,
//   energy_j,avg_power_w,min_power_w,max_power_w,perf_class,priority
// (nnumr = requested node count, F-Data's column name.)
#pragma once

#include <string>
#include <vector>

#include "dataloaders/dataloader.h"

namespace sraps {

class FugakuLoader : public Dataloader {
 public:
  std::string system_name() const override { return "fugaku"; }
  std::vector<Job> Load(const std::string& path) const override;
};

/// Workload archetypes used by the generator.  Distinct (nodes, runtime,
/// power) signatures give the ML pipeline real cluster structure to find
/// (§4.4.1's behavioural clusters).
enum class FugakuArchetype {
  kComputeBound,   ///< high power, medium nodes, long
  kMemoryBound,    ///< lower power, medium nodes, long
  kDebug,          ///< tiny, short, low power
  kCapability,     ///< very large node counts, medium runtime
  kEnsemble,       ///< many small jobs, medium power
};

struct FugakuDatasetSpec {
  SimDuration span = 8 * kDay;
  /// Arrival intensity by phase: the Fig. 10a week has a low-load region
  /// (~16 % requested utilisation) followed by a high-load region where
  /// demand exceeds the machine.
  double low_rate_per_hour = 250;
  double high_rate_per_hour = 3200;
  SimDuration high_load_start = 4 * kDay;  ///< when the burst begins
  std::uint64_t seed = 2021;
  double utilization_cap = 0.95;
  int scale_nodes = 8192;  ///< simulate a Fugaku slice (full 158,976 nodes is
                           ///< possible but slow for unit-test cadence)
};

/// Writes jobs.csv under `dir`, returns the jobs.  Node counts are scaled to
/// `scale_nodes`; select the "fugaku" SystemConfig scaled accordingly or use
/// FugakuSliceConfig().
std::vector<Job> GenerateFugakuDataset(const std::string& dir,
                                       const FugakuDatasetSpec& spec = {});

/// A Fugaku SystemConfig resized to a slice of the machine (same node specs).
SystemConfig FugakuSliceConfig(int nodes);

}  // namespace sraps
