// Frontier dataloader.  The paper's Frontier dataset is proprietary (Slurm +
// Cray EX Telemetry via STREAM, 15 s CPU/GPU power and temperature traces),
// so this loader reads the same canonical jobs.csv/traces.csv schema and the
// generators below synthesise the two Frontier workloads the paper uses:
//   - GenerateFrontierFig6Scenario: the Fig. 6 day — a busy mixed workload
//     that drains for three back-to-back full-system (9216-node) runs, then
//     returns to a normal mix at lower total power; and
//   - GenerateFrontierDataset: a generic multi-day leadership-class mix
//     (used by the FastSim integration and the engine throughput bench).
// Priorities follow the documented Frontier policy: FIFO boosted by node
// count (leadership-class jobs jump the queue).
#pragma once

#include <string>
#include <vector>

#include "dataloaders/dataloader.h"

namespace sraps {

class FrontierLoader : public Dataloader {
 public:
  std::string system_name() const override { return "frontier"; }
  std::vector<Job> Load(const std::string& path) const override;
};

struct FrontierDatasetSpec {
  SimDuration span = 15 * kDay;
  double arrival_rate_per_hour = 15;  ///< ~5400 jobs over 15 days
  std::uint64_t seed = 600;
  double utilization_cap = 0.9;
  SimDuration max_hold = 1 * kHour;
};

/// Generic Frontier-shaped dataset written to `dir` (jobs.csv + traces.csv).
std::vector<Job> GenerateFrontierDataset(const std::string& dir,
                                         const FrontierDatasetSpec& spec = {});

struct FrontierFig6Spec {
  SimDuration span = 26 * kHour;  ///< a bit more than the plotted 24 h
  int full_system_nodes = 9216;   ///< the three hero runs
  SimDuration hero_runtime = 2 * kHour;
  std::uint64_t seed = 66;
};

/// The Fig. 6 scenario.  The *recorded* schedule drains the machine, runs
/// the three hero jobs sequentially, then resumes a normal mix; the hero
/// jobs are submitted early so rescheduling policies may start them sooner.
/// Writes jobs.csv + traces.csv under `dir` and returns the jobs.
std::vector<Job> GenerateFrontierFig6Scenario(const std::string& dir,
                                              const FrontierFig6Spec& spec = {});

/// Frontier's documented priority: age-ordered FIFO boosted by node count.
double FrontierPriority(SimTime submit, int nodes);

}  // namespace sraps
