#include "dataloaders/marconi.h"

#include <filesystem>

#include "config/system_config.h"
#include "common/rng.h"
#include "dataloaders/jobs_io.h"
#include "dataloaders/replay_synth.h"
#include "dataloaders/trace_table.h"
#include "workload/synthetic.h"

namespace sraps {
namespace fs = std::filesystem;

std::vector<Job> MarconiLoader::Load(const std::string& path) const {
  fs::path root(path);
  fs::path jobs_csv = fs::is_directory(root) ? root / "jobs.csv" : root;
  // PM100 contains shared-node jobs, which the model does not support;
  // they are filtered exactly as the paper does (§2.2).
  std::vector<Job> jobs = ReadJobsCsv(jobs_csv.string(), /*filter_shared=*/true);
  const fs::path traces_csv = jobs_csv.parent_path() / "traces.csv";
  if (fs::exists(traces_csv)) {
    AttachTraces(jobs, LoadTraceTable(traces_csv.string()));
  }
  return jobs;
}

std::vector<Job> GenerateMarconiDataset(const std::string& dir,
                                        const MarconiDatasetSpec& spec) {
  const SystemConfig config = MakeSystemConfig("marconi100");

  SyntheticWorkloadSpec wl;
  wl.first_submit = 0;
  wl.horizon = spec.span;
  wl.arrival_rate_per_hour = spec.arrival_rate_per_hour;
  wl.max_nodes = 256;  // PM100 jobs are small-to-medium on the 980-node system
  wl.mean_nodes_log2 = 2.2;
  wl.sd_nodes_log2 = 1.8;
  wl.runtime_mu = 8.3;   // median ~ 1.1 h
  wl.runtime_sigma = 1.1;
  wl.overestimate_factor = 1.8;
  wl.mean_cpu_util = 0.6;
  wl.mean_gpu_util = 0.5;
  wl.gpu_jobs = true;   // V100 nodes
  wl.trace_interval = config.telemetry_interval;  // 20 s cadence, as PM100
  wl.num_accounts = 20;
  wl.seed = spec.seed;
  std::vector<Job> jobs = GenerateSyntheticWorkload(wl);

  ReplaySynthesisOptions rs;
  rs.total_nodes = config.TotalNodes();
  rs.utilization_cap = spec.utilization_cap;
  rs.max_hold = spec.max_hold;
  rs.seed = spec.seed + 1;
  rs.assign_node_lists = true;
  SynthesizeRecordedSchedule(jobs, rs);

  // PM100 realism: the raw dataset also contains shared-node jobs.  They are
  // written to the CSV (flagged) but not returned — the loader filters them,
  // which is why "replay will differ from the system's full utilisation".
  Rng shared_rng(spec.seed + 2);
  std::vector<Job> all_rows = jobs;
  std::vector<bool> shared_flags(jobs.size(), false);
  const std::size_t n_shared = jobs.size() / 20;  // ~5 % shared jobs
  JobId next_id = 1;
  for (const Job& j : jobs) next_id = std::max(next_id, j.id + 1);
  for (std::size_t k = 0; k < n_shared; ++k) {
    Job s;
    s.id = next_id++;
    s.user = "shared_u";
    s.account = "shared_acct";
    s.submit_time = shared_rng.UniformInt(0, spec.span - 1);
    s.recorded_start = s.submit_time + shared_rng.UniformInt(0, 600);
    s.recorded_end = s.recorded_start + shared_rng.UniformInt(120, 7200);
    s.time_limit = (s.recorded_end - s.recorded_start) * 2;
    s.nodes_required = 1;  // shared jobs occupy fractions of one node
    all_rows.push_back(std::move(s));
    shared_flags.push_back(true);
  }

  fs::create_directories(dir);
  WriteJobsCsv((fs::path(dir) / "jobs.csv").string(), all_rows, shared_flags);
  SaveTraceTable((fs::path(dir) / "traces.csv").string(), jobs);
  return jobs;
}

}  // namespace sraps
