// The scheduler abstraction of §3.2.4.  Each simulation-loop iteration the
// engine offers the scheduler the current queue and system view; the
// scheduler returns *proposed placements*, which the engine then executes
// through the resource manager.  Schedulers never mutate system state —
// that separation is what makes external scheduler simulators pluggable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/time.h"
#include "config/system_config.h"
#include "sched/resource_manager.h"
#include "workload/job.h"
#include "workload/job_queue.h"

namespace sraps {

class AccountRegistry;
class HeatRecirculationMatrix;
struct GridEnvironment;

/// One proposed job start.  `nodes` empty = the resource manager chooses
/// (reschedule mode); non-empty = exact placement (replay mode / external
/// schedulers that manage their own node map).
struct Placement {
  JobQueue::Handle handle = 0;
  std::vector<int> nodes;
  /// Replay mode: end the job at its *recorded* end rather than
  /// start + duration, so tick quantisation of the start cannot cascade
  /// through the rest of the recorded schedule.
  bool anchor_recorded_end = false;
  /// Scored placement (the thermal-aware middle ground between "engine
  /// chooses" and "exact nodes"): when set and `nodes` is empty, the engine
  /// allocates the free nodes minimising (score(node), node id) via
  /// ResourceManager::AllocateScored.  The callback must be a pure function
  /// of the SchedulerContext it was built from — it is invoked after the
  /// scheduler returns, against the same resource state.  Last member so the
  /// established {handle, nodes, anchor} aggregate initialisations compile
  /// unchanged.
  std::function<double(int)> score = nullptr;
};

/// What the scheduler may know about a running job — enough for EASY's
/// shadow-time computation, nothing more (schedulers must not read realised
/// futures).
struct RunningJobView {
  JobId id = 0;
  int nodes = 0;
  SimTime estimated_end = 0;  ///< start + wall-time estimate
};

/// The engine-facing power-state modes of one node (engine/ owns the runtime
/// vector; exposed here so power-aware schedulers can read it).
enum class NodePowerMode : std::uint8_t {
  kActive = 0,  ///< powered, allocatable (or busy with a job)
  kCIdle = 1,   ///< shallow idle state: low draw, fast wake
  kSSleep = 2,  ///< deep sleep state: lowest draw, slow wake
  kWaking = 3,  ///< wake transition in flight; draws active idle, not
                ///< allocatable until the wake event fires
};

/// One proposed power-state change, returned by PlanPowerStates.  Exactly one
/// action per entry; the engine executes them in order and silently skips
/// actions that are no longer valid (node went down, job landed on it, ...).
struct PowerAction {
  enum class Kind : std::uint8_t {
    kSetPState,  ///< clock node to ladder rung `pstate`
    kSleep,      ///< put a free node into C (deep=false) or S (deep=true)
    kWake,       ///< start the wake transition of a sleeping node
  };
  Kind kind = Kind::kSetPState;
  int node = -1;
  int pstate = 0;     ///< for kSetPState
  bool deep = false;  ///< for kSleep: S-state instead of C-state
};

/// Read-only view handed to Scheduler::Schedule each iteration.
struct SchedulerContext {
  SimTime now = 0;
  const std::vector<Job>* jobs = nullptr;  ///< engine job storage, indexed by Handle
  const JobQueue* queue = nullptr;
  const ResourceManager* rm = nullptr;
  const std::vector<RunningJobView>* running = nullptr;
  /// True when this tick saw submissions, completions, or frees; schedulers
  /// may skip recomputation otherwise (§3.2.4 trigger/skip decision).
  bool had_events = true;

  // Power-state view (null / zero for engines without power states).
  const SystemConfig* config = nullptr;
  const std::vector<std::uint8_t>* node_pstate = nullptr;   ///< per-node rung
  const std::vector<NodePowerMode>* node_mode = nullptr;    ///< per-node mode
  double effective_cap_w = 0.0;      ///< static cap ∩ DR windows; 0 = uncapped
  double last_wall_power_w = 0.0;    ///< wall draw of the previous tick
  double last_busy_power_w = 0.0;    ///< busy share of the previous tick

  // Thermal-placement view (null / zero without a thermal topology).
  /// Per-node inlet temperatures of the previous integrated span (°C).
  const std::vector<double>* node_inlet_c = nullptr;
  /// The heat-recirculation topology, for score functions that weigh how
  /// much of a node's exhaust re-enters other inlets (ColumnSum) or where a
  /// node sits in the rack grid (RackOf).
  const HeatRecirculationMatrix* hr_matrix = nullptr;
  double supply_temp_c = 0.0;  ///< facility supply setpoint (°C)

  const Job& JobOf(JobQueue::Handle h) const { return (*jobs)[h]; }
};

/// Rebinding targets handed to Scheduler::Clone.  A forked simulation owns
/// fresh copies of the account snapshot and grid environment; schedulers that
/// hold non-owning pointers into their host must point the clone at the
/// fork's copies, never at the original's (which may be destroyed first).
struct SchedulerCloneContext {
  const AccountRegistry* accounts = nullptr;  ///< fork's collection-phase accounts
  const GridEnvironment* grid = nullptr;      ///< fork's grid environment
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Deep-copies this scheduler *and its internal state* so a forked engine
  /// resumes scheduling bit-identically to the original (the snapshot/fork
  /// primitive of core/snapshot.h).  Pointer-holding schedulers rebind to the
  /// fork-owned objects in `ctx`.  Returns nullptr when the scheduler cannot
  /// be cloned — Simulation::Snapshot() then refuses with a clear error
  /// rather than silently sharing state across forks.
  virtual std::unique_ptr<Scheduler> Clone(const SchedulerCloneContext& ctx) const {
    (void)ctx;
    return nullptr;
  }

  /// Computes this tick's placements.  Must be side-effect free with respect
  /// to engine state; may maintain internal scheduler state.
  virtual std::vector<Placement> Schedule(const SchedulerContext& ctx) = 0;

  /// True if this scheduler's decisions can change with the mere passage of
  /// time (replay waits for recorded start times; external simulators hold
  /// future reservations).  The engine then invokes it every tick instead of
  /// only on event-bearing ticks.
  virtual bool NeedsTimeTriggered() const { return false; }

  /// True when the scheduler manages node power states.  The engine then
  /// calls PlanPowerStates before Schedule on event-bearing iterations and
  /// records the power-state telemetry channels.
  virtual bool WantsPowerStates() const { return false; }

  /// Computes this iteration's power-state changes (down/up-clocks, sleeps,
  /// wakes).  Like Schedule, must not mutate engine state — the engine
  /// executes the returned actions through its own SetNodePState /
  /// SleepNode / WakeNode entry points, skipping any that are stale.
  virtual std::vector<PowerAction> PlanPowerStates(const SchedulerContext& ctx) {
    (void)ctx;
    return {};
  }

  /// Notification hooks so event-based external schedulers can maintain
  /// their own state (§3.2.4: "implement the logic for triggering and
  /// sending these events").  Defaults are no-ops.
  virtual void OnJobSubmitted(const Job&) {}
  virtual void OnJobStarted(const Job&) {}
  virtual void OnJobCompleted(const Job&) {}
};

}  // namespace sraps
