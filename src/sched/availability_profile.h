// Future node-availability profile: the data structure behind conservative
// backfill (every queued job gets a reservation, not just the head — the
// "conservative" variant §3.2.5 lists among the policies the default
// scheduler does not ship).  The profile is a step function
//     t -> free nodes
// built from the current free count plus the estimated completions of
// running jobs; reservations carve capacity out of future intervals.
#pragma once

#include <vector>

#include "common/time.h"

namespace sraps {

class AvailabilityProfile {
 public:
  /// Starts a profile with `free_now` nodes available from `now` onwards.
  AvailabilityProfile(SimTime now, int free_now);

  /// Adds capacity that becomes free at time t (a running job's estimated
  /// completion).  t is clamped to `now`.
  void AddRelease(SimTime t, int nodes);

  /// Earliest time >= now at which `nodes` are continuously available for
  /// `duration` seconds.  Returns -1 if never (demand exceeds the machine).
  SimTime EarliestFit(int nodes, SimDuration duration) const;

  /// Reserves `nodes` for [start, start+duration): reduces availability in
  /// that window.  Throws std::logic_error if the window lacks capacity
  /// (callers must use EarliestFit first).
  void Reserve(SimTime start, SimDuration duration, int nodes);

  /// Free nodes at a given instant.
  int FreeAt(SimTime t) const;

  SimTime now() const { return now_; }

 private:
  struct Step {
    SimTime t;
    int free;  ///< free nodes from t until the next step
  };
  /// Steps sorted by time; the last step extends to infinity.
  std::vector<Step> steps_;
  SimTime now_;
};

}  // namespace sraps
