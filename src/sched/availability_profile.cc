#include "sched/availability_profile.h"

#include <algorithm>
#include <stdexcept>

namespace sraps {

AvailabilityProfile::AvailabilityProfile(SimTime now, int free_now) : now_(now) {
  steps_.push_back({now, free_now});
}

void AvailabilityProfile::AddRelease(SimTime t, int nodes) {
  if (nodes <= 0) return;
  t = std::max(t, now_);
  // Find the step containing t; split it if needed, then add capacity to
  // every step from t onwards.
  std::size_t i = 0;
  while (i + 1 < steps_.size() && steps_[i + 1].t <= t) ++i;
  if (steps_[i].t != t) {
    steps_.insert(steps_.begin() + static_cast<long>(i) + 1, {t, steps_[i].free});
    ++i;
  }
  for (std::size_t k = i; k < steps_.size(); ++k) steps_[k].free += nodes;
}

int AvailabilityProfile::FreeAt(SimTime t) const {
  if (t < steps_.front().t) return steps_.front().free;
  std::size_t i = 0;
  while (i + 1 < steps_.size() && steps_[i + 1].t <= t) ++i;
  return steps_[i].free;
}

SimTime AvailabilityProfile::EarliestFit(int nodes, SimDuration duration) const {
  if (duration <= 0) duration = 1;
  // Candidate start times are step boundaries.
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const SimTime start = std::max(steps_[i].t, now_);
    // Check every step overlapping [start, start+duration).
    bool ok = true;
    for (std::size_t k = i; k < steps_.size(); ++k) {
      if (steps_[k].t >= start + duration) break;
      // Step k overlaps the window iff its interval intersects it; for k==i
      // the step starts at or before `start`.
      if (steps_[k].free < nodes) {
        ok = false;
        break;
      }
    }
    if (ok) return start;
  }
  return -1;
}

void AvailabilityProfile::Reserve(SimTime start, SimDuration duration, int nodes) {
  if (duration <= 0) duration = 1;
  const SimTime end = start + duration;
  // Split at start and end so the affected range is aligned to steps.
  auto split_at = [&](SimTime t) {
    if (t <= steps_.front().t) return;
    std::size_t i = 0;
    while (i + 1 < steps_.size() && steps_[i + 1].t <= t) ++i;
    if (steps_[i].t != t) {
      steps_.insert(steps_.begin() + static_cast<long>(i) + 1, {t, steps_[i].free});
    }
  };
  split_at(start);
  split_at(end);
  for (auto& step : steps_) {
    if (step.t >= start && step.t < end) {
      if (step.free < nodes) {
        throw std::logic_error("AvailabilityProfile: reserving beyond capacity");
      }
      step.free -= nodes;
    }
  }
}

}  // namespace sraps
