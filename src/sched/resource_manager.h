// The resource manager owns node state (§3.2.3): schedulers *propose*
// placements, the resource manager validates and executes them.  This
// split — introduced by the S-RAPS refactor — is what lets external
// schedulers coexist with the built-in one, and it resolves the original
// RAPS timing bug where a node ending and starting a job in the same tick
// double-allocated (completions must be released before placements).
#pragma once

#include <functional>
#include <set>
#include <vector>

#include "workload/job.h"

namespace sraps {

/// How Allocate picks nodes when the scheduler leaves the choice open.
enum class AllocationStrategy {
  kLowestFirst,  ///< lowest-numbered free nodes (default; deterministic)
  kBestFitContiguous,  ///< smallest contiguous free run that fits, reducing
                       ///< fragmentation for network-topology-aware studies
};

class ResourceManager {
 public:
  explicit ResourceManager(
      int total_nodes, AllocationStrategy strategy = AllocationStrategy::kLowestFirst);

  int total_nodes() const { return total_nodes_; }
  int free_nodes() const { return static_cast<int>(free_.size()); }
  int busy_nodes() const { return total_nodes_ - free_nodes(); }
  bool IsFree(int node) const;

  /// True if `count` nodes could be allocated right now.
  bool CanAllocate(int count) const { return count <= free_nodes(); }

  /// Allocates `count` lowest-numbered free nodes.  Throws
  /// std::runtime_error if not enough nodes are free.
  std::vector<int> Allocate(int count);

  /// Allocates the `count` free nodes minimising (score(node), node id) —
  /// the scored-placement path of the thermal-aware policies.  Ties break
  /// on the lower node id, and the returned list is sorted ascending by id
  /// so downstream order-sensitive arithmetic (per-job power summation)
  /// matches every other allocation path.  Throws std::invalid_argument on
  /// a null scorer or non-positive count, std::runtime_error when fewer
  /// than `count` nodes are free.
  std::vector<int> AllocateScored(int count,
                                  const std::function<double(int)>& score);

  /// Allocates exactly the given nodes (replay mode: the telemetry's
  /// placement is enforced).  Throws std::runtime_error naming the first
  /// conflicting node if any is busy or out of range.
  void AllocateExact(const std::vector<int>& nodes);

  /// Releases nodes.  Throws std::runtime_error if a node was not busy
  /// (double-release is always a bug upstream).
  void Release(const std::vector<int>& nodes);

  /// Marks nodes as unavailable (down/drained — the paper notes production
  /// schedules depend on this; the open datasets lack the information, so
  /// the twin exposes it for what-if failure studies).  A busy node is not
  /// interrupted: it is recorded as pending-down and leaves service when its
  /// job releases it (drain semantics).
  void MarkDown(const std::vector<int>& nodes);

  /// Returns a down node to service.  Throws std::runtime_error if the node
  /// is not down (or only pending-down).
  void MarkUp(const std::vector<int>& nodes);

  bool IsDown(int node) const;
  /// True if a drain was requested while the node was running a job.
  bool IsPendingDown(int node) const { return pending_down_.count(node) != 0; }
  int down_nodes() const { return static_cast<int>(down_.size()); }

  /// Takes a free node out of the allocatable pool for a C/S sleep state.
  /// Throws std::runtime_error if the node is busy, down, or already asleep
  /// — only idle capacity may sleep.  The engine owns which sleep state the
  /// node is in; the resource manager only tracks non-allocatability.
  void MarkAsleep(int node);

  /// Returns a sleeping node to the free pool (wake transition finished, or
  /// an outage force-wakes it).  Throws std::runtime_error if not asleep.
  void MarkAwake(int node);

  bool IsAsleep(int node) const { return asleep_.count(node) != 0; }
  int asleep_nodes() const { return static_cast<int>(asleep_.size()); }

  /// Sorted list of currently free node ids (copy).
  std::vector<int> FreeList() const;

  AllocationStrategy strategy() const { return strategy_; }

 private:
  std::vector<int> PickLowestFirst(int count) const;
  std::vector<int> PickBestFitContiguous(int count) const;

  int total_nodes_;
  AllocationStrategy strategy_;
  std::set<int> free_;
  std::vector<bool> busy_;     ///< includes down and asleep nodes
  std::set<int> down_;         ///< out of service (subset of busy)
  std::set<int> pending_down_; ///< drain requested while running a job
  std::set<int> asleep_;       ///< in a C/S state (subset of busy, disjoint
                               ///< from down)
};

}  // namespace sraps
