#include "sched/builtin_scheduler.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "cooling/heat_recirculation.h"
#include "sched/availability_profile.h"

namespace sraps {

BuiltinScheduler::BuiltinScheduler(Policy policy, BackfillMode backfill,
                                   const AccountRegistry* accounts,
                                   const GridEnvironment* grid)
    : policy_(policy), backfill_(backfill), accounts_(accounts), grid_(grid) {
  if (IsAccountPolicy(policy_) && accounts_ == nullptr) {
    throw std::invalid_argument("BuiltinScheduler: policy " + ToString(policy_) +
                                " requires an AccountRegistry");
  }
  if (policy_ == Policy::kGridAware && (grid_ == nullptr || !grid_->HasSignals())) {
    throw std::invalid_argument(
        "BuiltinScheduler: policy grid_aware requires a GridEnvironment with a "
        "price or carbon signal");
  }
}

std::unique_ptr<Scheduler> BuiltinScheduler::Clone(
    const SchedulerCloneContext& ctx) const {
  // Fall back to the original pointers for dependencies the fork did not
  // re-own (e.g. a test-constructed scheduler with a standalone registry).
  const AccountRegistry* accounts = ctx.accounts ? ctx.accounts : accounts_;
  const GridEnvironment* grid = ctx.grid ? ctx.grid : grid_;
  return std::make_unique<BuiltinScheduler>(policy_, backfill_, accounts, grid);
}

std::string BuiltinScheduler::name() const {
  return "builtin:" + ToString(policy_) + "+" + ToString(backfill_);
}

double BuiltinScheduler::PriorityKey(const Job& job) const {
  switch (policy_) {
    case Policy::kReplay:
      // Not used — replay has its own path — but keep a sane ordering.
      return -static_cast<double>(job.recorded_start);
    case Policy::kFcfs:
      return -static_cast<double>(job.submit_time);
    case Policy::kSjf:
      return -static_cast<double>(job.RuntimeEstimate());
    case Policy::kLjf:
      return static_cast<double>(job.nodes_required);
    case Policy::kPriority:
      return job.priority;
    case Policy::kMl:
      return job.has_ml_score ? job.ml_score : job.priority;
    case Policy::kGridAware:
      // FCFS base order; the grid influence is the eligibility hold, not
      // the sort key.
      return -static_cast<double>(job.submit_time);
    case Policy::kAcctAvgPower:
      return accounts_->GetOrZero(job.account).AvgPowerW();
    case Policy::kAcctLowAvgPower:
      return -accounts_->GetOrZero(job.account).AvgPowerW();
    case Policy::kAcctEdp:
      return -accounts_->GetOrZero(job.account).AvgEdp();
    case Policy::kAcctFugakuPts:
      return accounts_->GetOrZero(job.account).fugaku_points;
    case Policy::kRaceToIdle:
    case Policy::kPaceToCap:
      // FCFS job order; the power influence lives in PlanPowerStates.
      return -static_cast<double>(job.submit_time);
    case Policy::kLowTempFirst:
    case Policy::kMinHr:
    case Policy::kCenterRackFirst:
    case Policy::kBestEdp:
      // FCFS job order; the thermal influence is *where* a job lands
      // (ThermalScorer), not when it starts.
      return -static_cast<double>(job.submit_time);
  }
  return 0.0;
}

std::vector<PowerAction> BuiltinScheduler::PlanPowerStates(
    const SchedulerContext& ctx) {
  std::vector<PowerAction> actions;
  if (!ctx.config || !ctx.node_pstate || !ctx.node_mode) return actions;
  const SystemConfig& cfg = *ctx.config;
  const std::vector<std::uint8_t>& pstate = *ctx.node_pstate;
  const std::vector<NodePowerMode>& mode = *ctx.node_mode;
  const int total = static_cast<int>(pstate.size());

  if (policy_ == Policy::kRaceToIdle) {
    // Full clock always: undo any down-clock left behind (e.g. by a fork
    // from a pace_to_cap run).
    for (int n = 0; n < total; ++n) {
      if (pstate[n] != 0) {
        actions.push_back({PowerAction::Kind::kSetPState, n, 0, false});
      }
    }
    if (ctx.queue->empty()) {
      // Idle machine: sleep every free node as deeply as its class allows.
      for (int n = 0; n < total; ++n) {
        if (mode[n] != NodePowerMode::kActive) continue;
        if (!ctx.rm->IsFree(n) || ctx.rm->IsDown(n)) continue;
        const MachineClassSpec& cls = cfg.MachineClassOf(n);
        if (cls.s_state.enabled) {
          actions.push_back({PowerAction::Kind::kSleep, n, 0, true});
        } else if (cls.c_state.enabled) {
          actions.push_back({PowerAction::Kind::kSleep, n, 0, false});
        }
      }
      return actions;
    }
    // Queued demand: wake just enough sleepers to cover what free + already
    // waking nodes cannot.  Shallow sleepers first (they wake sooner), then
    // deep, lowest id first — a deterministic order so forks replan
    // identically.
    int demand = 0;
    for (JobQueue::Handle h : ctx.queue->handles()) {
      demand += ctx.JobOf(h).nodes_required;
    }
    int covered = ctx.rm->free_nodes();
    for (int n = 0; n < total; ++n) {
      if (mode[n] == NodePowerMode::kWaking) ++covered;
    }
    for (const NodePowerMode want :
         {NodePowerMode::kCIdle, NodePowerMode::kSSleep}) {
      for (int n = 0; n < total && covered < demand; ++n) {
        if (mode[n] != want) continue;
        actions.push_back({PowerAction::Kind::kWake, n, 0, false});
        ++covered;
      }
    }
    return actions;
  }

  // pace_to_cap: fit under the effective grid cap by down-clocking busy
  // nodes instead of holding jobs.
  const double cap = ctx.effective_cap_w;
  auto busy_active = [&](int n) {
    return mode[n] == NodePowerMode::kActive && !ctx.rm->IsFree(n) &&
           !ctx.rm->IsDown(n) && !ctx.rm->IsAsleep(n);
  };
  if (cap <= 0.0) {
    // Uncapped: run everything at full clock.
    for (int n = 0; n < total; ++n) {
      if (pstate[n] != 0) {
        actions.push_back({PowerAction::Kind::kSetPState, n, 0, false});
      }
    }
    return actions;
  }
  if (ctx.last_wall_power_w > cap) {
    // Over the cap: one ladder rung down across the board.  Repeated ticks
    // walk the whole ladder until the draw fits (or rungs run out and the
    // engine's throttle fallback takes over).
    for (int n = 0; n < total; ++n) {
      if (!busy_active(n)) continue;
      const MachineClassSpec& cls = cfg.MachineClassOf(n);
      if (pstate[n] + 1 < cls.NumPStates()) {
        actions.push_back(
            {PowerAction::Kind::kSetPState, n, pstate[n] + 1, false});
      }
    }
    return actions;
  }
  // Under the cap: consider stepping back up, but only when the *worst-case*
  // one-rung step-up provably fits under 95% of the cap — stepping up and
  // immediately back down every other tick would thrash job runtimes.
  double max_ratio = 1.0;
  bool any_down = false;
  for (int n = 0; n < total; ++n) {
    if (!busy_active(n) || pstate[n] == 0) continue;
    any_down = true;
    const MachineClassSpec& cls = cfg.MachineClassOf(n);
    const double up = cls.PStateAt(pstate[n] - 1).power_scale;
    const double here = cls.PStateAt(pstate[n]).power_scale;
    if (here > 0.0) max_ratio = std::max(max_ratio, up / here);
  }
  if (!any_down) return actions;
  const double idle_share = ctx.last_wall_power_w - ctx.last_busy_power_w;
  const double projected = idle_share + ctx.last_busy_power_w * max_ratio;
  if (projected <= 0.95 * cap) {
    for (int n = 0; n < total; ++n) {
      if (!busy_active(n) || pstate[n] == 0) continue;
      actions.push_back(
          {PowerAction::Kind::kSetPState, n, pstate[n] - 1, false});
    }
  }
  return actions;
}

std::vector<Placement> BuiltinScheduler::Schedule(const SchedulerContext& ctx) {
  if (policy_ == Policy::kReplay) return ScheduleReplay(ctx);
  if (!ctx.had_events) return {};  // nothing changed: keep the previous schedule
  std::vector<Placement> placements = ScheduleOrdered(ctx);
  if (const std::function<double(int)> score = ThermalScorer(ctx)) {
    // Thermal policies keep the FCFS admission decision and steer only the
    // node choice: every count-based placement gets the scorer attached.
    for (Placement& p : placements) {
      if (p.nodes.empty()) p.score = score;
    }
  }
  return placements;
}

std::vector<Placement> BuiltinScheduler::ScheduleReplay(
    const SchedulerContext& ctx) const {
  // Replay enforces the telemetry's own schedule: a job starts exactly at its
  // recorded start, on its recorded nodes when the dataset pins them.
  // Two passes: exact (recorded) placements first so that count-based
  // allocations — which the resource manager satisfies with the lowest free
  // nodes — cannot steal a node a recorded placement in the same batch needs.
  std::vector<Placement> placements;
  std::set<int> claimed;  // nodes taken by earlier placements in this batch
  for (JobQueue::Handle h : ctx.queue->handles()) {
    const Job& job = ctx.JobOf(h);
    if (job.recorded_start < 0 || job.recorded_start > ctx.now) continue;
    if (!job.HasRecordedPlacement()) continue;
    bool ok = true;
    for (int n : job.recorded_nodes) {
      if (!ctx.rm->IsFree(n) || claimed.count(n)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;  // conflicting record; retry next tick
    claimed.insert(job.recorded_nodes.begin(), job.recorded_nodes.end());
    placements.push_back({h, job.recorded_nodes, /*anchor_recorded_end=*/true});
  }
  int budget = ctx.rm->free_nodes() - static_cast<int>(claimed.size());
  for (JobQueue::Handle h : ctx.queue->handles()) {
    const Job& job = ctx.JobOf(h);
    if (job.recorded_start < 0 || job.recorded_start > ctx.now) continue;
    if (job.HasRecordedPlacement()) continue;
    if (job.nodes_required > budget) continue;
    placements.push_back({h, {}, /*anchor_recorded_end=*/true});
    budget -= job.nodes_required;
  }
  return placements;
}

bool BuiltinScheduler::HoldForCheaperWindow(const Job& job, SimTime now) const {
  // Price is the primary cost signal; carbon stands in when no price is set
  // (the "clean" in cheap/clean windows).
  const GridSignal& sig = !grid_->price_usd_per_kwh.empty()
                              ? grid_->price_usd_per_kwh
                              : grid_->carbon_kg_per_kwh;
  if (sig.is_flat()) return false;
  const SimTime deadline = job.submit_time + grid_->slack_s;
  if (now >= deadline) return false;  // slack exhausted: run regardless
  const double here = sig.At(now);
  // Hold while a strictly cheaper boundary is reachable before the slack
  // deadline.  Signal boundaries are engine events, so the queue is always
  // re-examined exactly when the verdict can flip; at the cheapest boundary
  // within the remaining slack no cheaper one is reachable and the job runs.
  for (SimTime b = sig.NextBoundaryAfter(now); b >= 0 && b <= deadline;
       b = sig.NextBoundaryAfter(b)) {
    if (sig.At(b) < here) return true;
  }
  return false;
}

std::function<double(int)> BuiltinScheduler::ThermalScorer(
    const SchedulerContext& ctx) const {
  if (!IsThermalPolicy(policy_)) return nullptr;
  if (ctx.hr_matrix == nullptr || ctx.node_inlet_c == nullptr) return nullptr;
  const HeatRecirculationMatrix* hr = ctx.hr_matrix;
  const std::vector<double>* inlet = ctx.node_inlet_c;
  const double supply = ctx.supply_temp_c;
  switch (policy_) {
    case Policy::kLowTempFirst:
      // Coolest inlets first: jobs land where the air arriving at the node
      // is closest to the supply setpoint.
      return [inlet](int n) { return (*inlet)[static_cast<std::size_t>(n)]; };
    case Policy::kMinHr:
      // Least-recirculating exhaust first: Σ_i D[i][n] is the fraction of
      // node n's heat that reheats *any* inlet instead of leaving through
      // the cooling loop.
      return [hr](int n) { return hr->ColumnSum(n); };
    case Policy::kCenterRackFirst: {
      // Fill the centre of the row outward — the classic layout heuristic
      // when edge racks sit closest to the CRAC supply.
      const double centre = (hr->racks() - 1) / 2.0;
      return [hr, centre](int n) { return std::fabs(hr->RackOf(n) - centre); };
    }
    case Policy::kBestEdp:
      // Combined score: current inlet rise over supply (how pre-heated the
      // node's air already is) plus its recirculation column sum (how much
      // the new load will pre-heat everyone else).
      return [hr, inlet, supply](int n) {
        return ((*inlet)[static_cast<std::size_t>(n)] - supply) + hr->ColumnSum(n);
      };
    default:
      return nullptr;
  }
}

std::vector<Placement> BuiltinScheduler::ScheduleOrdered(
    const SchedulerContext& ctx) const {
  // Recompute the queue order under the policy (§3.2.3 step 3: "recomputes
  // the order of the job queue according to selected policy").
  std::vector<JobQueue::Handle> order(ctx.queue->handles());
  if (policy_ == Policy::kGridAware) {
    // Held jobs are simply not eligible this round; the rest of the pass
    // (ordering + backfill) runs unchanged over the eligible set.
    order.erase(std::remove_if(order.begin(), order.end(),
                               [&](JobQueue::Handle h) {
                                 return HoldForCheaperWindow(ctx.JobOf(h), ctx.now);
                               }),
                order.end());
    if (order.empty()) return {};
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](JobQueue::Handle a, JobQueue::Handle b) {
                     const double ka = PriorityKey(ctx.JobOf(a));
                     const double kb = PriorityKey(ctx.JobOf(b));
                     if (ka != kb) return ka > kb;
                     const Job& ja = ctx.JobOf(a);
                     const Job& jb = ctx.JobOf(b);
                     if (ja.submit_time != jb.submit_time) {
                       return ja.submit_time < jb.submit_time;
                     }
                     return ja.id < jb.id;
                   });

  if (backfill_ == BackfillMode::kConservative) {
    // Conservative backfill: walk the queue in priority order maintaining a
    // full availability profile; every job gets a reservation at its
    // earliest feasible time, and only jobs whose reservation is *now* are
    // released.  No job can delay a higher-priority job's reservation.
    AvailabilityProfile profile(ctx.now, ctx.rm->free_nodes());
    for (const RunningJobView& r : *ctx.running) {
      profile.AddRelease(r.estimated_end, r.nodes);
    }
    std::vector<Placement> placements;
    for (JobQueue::Handle h : order) {
      const Job& job = ctx.JobOf(h);
      const SimDuration estimate = job.RuntimeEstimate();
      const SimTime at = profile.EarliestFit(job.nodes_required, estimate);
      if (at < 0) continue;  // cannot ever fit (engine dismisses oversize jobs)
      profile.Reserve(at, estimate, job.nodes_required);
      if (at <= ctx.now) placements.push_back({h, {}});
    }
    return placements;
  }

  std::vector<Placement> placements;
  int free = ctx.rm->free_nodes();

  // In-order phase: place from the head while jobs fit.
  std::size_t head = 0;
  while (head < order.size()) {
    const Job& job = ctx.JobOf(order[head]);
    if (job.nodes_required > free) break;
    placements.push_back({order[head], {}});
    free -= job.nodes_required;
    ++head;
  }
  if (head >= order.size() || backfill_ == BackfillMode::kNone) return placements;

  if (backfill_ == BackfillMode::kFirstFit) {
    // First-fit: anything later in the queue that fits right now starts now.
    for (std::size_t i = head + 1; i < order.size(); ++i) {
      const Job& job = ctx.JobOf(order[i]);
      if (job.nodes_required <= free) {
        placements.push_back({order[i], {}});
        free -= job.nodes_required;
      }
    }
    return placements;
  }

  // EASY backfill (Skovira et al.): compute the blocked head job's shadow
  // time from the estimated completions of running jobs, reserve its nodes,
  // and admit later jobs only if they cannot delay that reservation.
  const Job& blocked = ctx.JobOf(order[head]);

  // Completion events: running jobs plus this tick's in-order placements
  // (which occupy nodes until now + their estimate).
  struct FreeEvent {
    SimTime t;
    int nodes;
  };
  std::vector<FreeEvent> events;
  for (const RunningJobView& r : *ctx.running) {
    events.push_back({r.estimated_end, r.nodes});
  }
  for (const Placement& p : placements) {
    const Job& j = ctx.JobOf(p.handle);
    events.push_back({ctx.now + j.RuntimeEstimate(), j.nodes_required});
  }
  std::sort(events.begin(), events.end(),
            [](const FreeEvent& a, const FreeEvent& b) { return a.t < b.t; });

  SimTime shadow = -1;
  int spare_at_shadow = 0;
  int avail = free;
  for (const FreeEvent& e : events) {
    avail += e.nodes;
    if (avail >= blocked.nodes_required) {
      shadow = e.t;
      spare_at_shadow = avail - blocked.nodes_required;
      break;
    }
  }
  if (shadow < 0) {
    // The head job can never start (it exceeds the machine) — the engine
    // dismisses such jobs at submission, so this means estimates are broken.
    return placements;
  }

  for (std::size_t i = head + 1; i < order.size(); ++i) {
    const Job& job = ctx.JobOf(order[i]);
    if (job.nodes_required > free) continue;
    const SimTime est_end = ctx.now + job.RuntimeEstimate();
    const bool fits_before_shadow = est_end <= shadow;
    const bool fits_in_spare = job.nodes_required <= spare_at_shadow;
    if (fits_before_shadow || fits_in_spare) {
      placements.push_back({order[i], {}});
      free -= job.nodes_required;
      if (!fits_before_shadow) spare_at_shadow -= job.nodes_required;
    }
  }
  return placements;
}

std::unique_ptr<Scheduler> MakeBuiltinScheduler(const std::string& policy,
                                                const std::string& backfill,
                                                const AccountRegistry* accounts,
                                                const GridEnvironment* grid) {
  const PolicyDef& p = PolicyRegistry().Get(policy);
  const BackfillDef b = backfill.empty() ? BackfillDef{BackfillMode::kNone, "none"}
                                         : BackfillRegistry().Get(backfill);
  return std::make_unique<BuiltinScheduler>(p.id, b.id, accounts, grid);
}

}  // namespace sraps
