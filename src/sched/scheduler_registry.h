// The `--scheduler` registry (§3.2.4): string-keyed factories producing the
// pluggable Scheduler a simulation runs with.  "default" and "experimental"
// (the built-in scheduler hosting every policy) register here at startup;
// the external couplings ("scheduleflow", "fastsim") register from
// src/extsched/; plugins register their own factories the same way —
// replacing the constructor if/else dispatch the seed facade used.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accounts/accounts.h"
#include "common/registry.h"
#include "config/system_config.h"
#include "grid/grid_environment.h"
#include "sched/scheduler.h"
#include "workload/job.h"

namespace sraps {

/// Everything a scheduler factory may need.  Pointers are non-owning and
/// valid for the duration of the factory call only.
struct SchedulerFactoryContext {
  const SystemConfig* config = nullptr;     ///< resolved system description
  const std::vector<Job>* jobs = nullptr;   ///< full workload (pre-window)
  std::string policy = "replay";            ///< --policy (built-in scheduler)
  std::string backfill = "none";            ///< --backfill (built-in scheduler)
  /// Collection-phase account snapshot for the acct_* policies; must outlive
  /// the produced scheduler.
  const AccountRegistry* accounts = nullptr;
  /// Grid environment for grid-reactive policies (grid_aware); must outlive
  /// the produced scheduler.  May be null.
  const GridEnvironment* grid = nullptr;
};

using SchedulerFactory =
    std::function<std::unique_ptr<Scheduler>(const SchedulerFactoryContext&)>;

/// The `--scheduler` registry, pre-populated with "default" and
/// "experimental".  External couplings are added by
/// RegisterExternalSchedulers() (src/extsched/extsched_registry.h).
NamedRegistry<SchedulerFactory>& SchedulerRegistry();

}  // namespace sraps
