// Policy and backfill identifiers matching the paper's CLI surface
// (`--policy`, `--backfill`, §3.2.5 and schedulers/experimental.py §4.3),
// resolved through string-keyed registries so aliases and plugin-registered
// names share one mechanism with schedulers and dataloaders.
#pragma once

#include <optional>
#include <string>

#include "common/registry.h"

namespace sraps {

enum class Policy {
  kReplay,    ///< replay the recorded schedule exactly (original RAPS mode)
  kFcfs,      ///< first-come first-served
  kSjf,       ///< shortest-job-first (by runtime estimate)
  kLjf,       ///< largest-job-first (by node count)
  kPriority,  ///< dataset-provided priority, descending
  kMl,        ///< ML-guided: rank by the inference pipeline's score (§4.4)
  /// Grid-aware: FCFS order, but jobs are held back — up to the grid
  /// environment's slack bound past their submit time — while a strictly
  /// cheaper (price signal; carbon when no price is set) window is reachable
  /// within that slack.  The sustainability scheduling the §3.2.6 accounting
  /// motivates.
  kGridAware,
  // Experimental account-derived incentive policies (§4.3): priority is the
  // issuing account's accumulated behaviour from a previous collection run.
  kAcctAvgPower,     ///< descending average power (high power favoured)
  kAcctLowAvgPower,  ///< ascending average power (low power favoured)
  kAcctEdp,          ///< ascending accumulated energy-delay product
  kAcctFugakuPts,    ///< descending Fugaku points (Solórzano et al.)
  // Power-state policies: FCFS job order plus node power management through
  // PlanPowerStates.  Require a system whose machine classes define power
  // states (P-state ladder or C/S sleep states).
  kRaceToIdle,  ///< run at full clock, sleep free nodes whenever the queue
                ///< is empty — minimise energy by finishing early
  kPaceToCap,   ///< down-clock busy nodes to fit under the effective grid
                ///< cap instead of holding jobs — trade makespan for
                ///< cap compliance
  // Thermal-aware placement policies: FCFS job order, but each job's nodes
  // are chosen by a thermal score over the heat-recirculation topology
  // instead of lowest-id-first.  Require a system whose cooling spec
  // declares a thermal topology.
  kLowTempFirst,     ///< place on the coolest inlets right now
  kMinHr,            ///< place on nodes whose exhaust recirculates least
  kCenterRackFirst,  ///< fill centre racks first (CDU-sharing heuristic)
  kBestEdp,          ///< combined inlet-rise + recirculation score
};

enum class BackfillMode {
  kNone,          ///< strict order; blocked head blocks everything
  kFirstFit,      ///< place any queued job that fits right now
  kEasy,          ///< EASY: backfill only if the head job's reservation is kept
  kConservative,  ///< every queued job holds a reservation; backfill may not
                  ///< delay any of them (the stricter variant the paper lists
                  ///< among policies the default scheduler lacks)
};

/// A registered scheduling policy: the enum the built-in scheduler orders
/// by, plus the metadata the builder needs for incremental validation.
struct PolicyDef {
  Policy id = Policy::kReplay;
  bool needs_accounts = false;  ///< requires a collection-phase AccountRegistry
  bool needs_grid = false;      ///< requires a GridEnvironment with signals
  bool needs_power_states = false;  ///< requires machine classes with power
                                    ///< states (ladder or C/S)
  bool needs_thermal = false;  ///< requires a cooling spec with a thermal
                               ///< topology (racks + hr_matrix)
  std::string canonical_name;   ///< ToString(id); aliases map here
};

/// A registered backfill strategy.
struct BackfillDef {
  BackfillMode id = BackfillMode::kNone;
  std::string canonical_name;
};

/// The `--policy` registry, pre-populated with the built-in names
/// ("replay", "fcfs", "sjf", "ljf", "priority", "ml", "grid_aware",
/// "acct_avg_power", "acct_low_avg_power", "acct_edp", "acct_fugaku_pts").
/// Plugins may register further aliases.
NamedRegistry<PolicyDef>& PolicyRegistry();

/// The `--backfill` registry, pre-populated with "none" (alias "nobf"),
/// "firstfit" (alias "first-fit"), "easy", and "conservative".
NamedRegistry<BackfillDef>& BackfillRegistry();

/// CLI-style names resolved through PolicyRegistry().
std::optional<Policy> ParsePolicy(const std::string& name);
std::string ToString(Policy p);

/// Resolved through BackfillRegistry(); "" means "none".
std::optional<BackfillMode> ParseBackfill(const std::string& name);
std::string ToString(BackfillMode m);

/// True for the policies that need an AccountRegistry snapshot.
bool IsAccountPolicy(Policy p);

/// True for the policies that manage node power states (race_to_idle,
/// pace_to_cap).
bool IsPowerStatePolicy(Policy p);

/// True for the policies that place jobs by thermal score (low_temp_first,
/// min_hr, center_rack_first, best_edp).
bool IsThermalPolicy(Policy p);

}  // namespace sraps
