#include "sched/resource_manager.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace sraps {

ResourceManager::ResourceManager(int total_nodes, AllocationStrategy strategy)
    : total_nodes_(total_nodes), strategy_(strategy) {
  if (total_nodes <= 0) throw std::invalid_argument("ResourceManager: no nodes");
  busy_.assign(total_nodes_, false);
  for (int i = 0; i < total_nodes_; ++i) free_.insert(free_.end(), i);
}

bool ResourceManager::IsFree(int node) const {
  if (node < 0 || node >= total_nodes_) return false;
  return !busy_[node];
}

bool ResourceManager::IsDown(int node) const { return down_.count(node) != 0; }

std::vector<int> ResourceManager::PickLowestFirst(int count) const {
  std::vector<int> nodes;
  nodes.reserve(count);
  auto it = free_.begin();
  for (int i = 0; i < count; ++i) nodes.push_back(*it++);
  return nodes;
}

std::vector<int> ResourceManager::PickBestFitContiguous(int count) const {
  // Scan the free set for contiguous runs; choose the smallest run that
  // fits (best fit).  Falls back to lowest-first when no single run fits.
  int best_start = -1, best_len = total_nodes_ + 1;
  int run_start = -1, run_len = 0, prev = -2;
  auto consider = [&] {
    if (run_len >= count && run_len < best_len) {
      best_len = run_len;
      best_start = run_start;
    }
  };
  for (int n : free_) {
    if (n == prev + 1) {
      ++run_len;
    } else {
      consider();
      run_start = n;
      run_len = 1;
    }
    prev = n;
  }
  consider();
  if (best_start < 0) return PickLowestFirst(count);
  std::vector<int> nodes;
  nodes.reserve(count);
  for (int i = 0; i < count; ++i) nodes.push_back(best_start + i);
  return nodes;
}

std::vector<int> ResourceManager::Allocate(int count) {
  if (count <= 0) throw std::invalid_argument("ResourceManager: allocate " +
                                              std::to_string(count) + " nodes");
  if (count > free_nodes()) {
    throw std::runtime_error("ResourceManager: requested " + std::to_string(count) +
                             " nodes, " + std::to_string(free_nodes()) + " free");
  }
  std::vector<int> nodes = strategy_ == AllocationStrategy::kBestFitContiguous
                               ? PickBestFitContiguous(count)
                               : PickLowestFirst(count);
  for (int n : nodes) {
    busy_[n] = true;
    free_.erase(n);
  }
  return nodes;
}

std::vector<int> ResourceManager::AllocateScored(
    int count, const std::function<double(int)>& score) {
  if (!score) {
    throw std::invalid_argument("ResourceManager: AllocateScored needs a scorer");
  }
  if (count <= 0) {
    throw std::invalid_argument("ResourceManager: allocate " +
                                std::to_string(count) + " nodes");
  }
  if (count > free_nodes()) {
    throw std::runtime_error("ResourceManager: requested " + std::to_string(count) +
                             " nodes, " + std::to_string(free_nodes()) + " free");
  }
  // (score, id) pairs over the free set: ids are unique, so the pairs form
  // a strict total order and nth_element deterministically partitions the
  // `count` smallest — equal scores break toward the lower node id.
  std::vector<std::pair<double, int>> scored;
  scored.reserve(free_.size());
  for (int n : free_) scored.emplace_back(score(n), n);
  std::nth_element(scored.begin(), scored.begin() + (count - 1), scored.end());
  std::vector<int> nodes;
  nodes.reserve(count);
  for (int i = 0; i < count; ++i) nodes.push_back(scored[i].second);
  std::sort(nodes.begin(), nodes.end());
  for (int n : nodes) {
    busy_[n] = true;
    free_.erase(n);
  }
  return nodes;
}

void ResourceManager::AllocateExact(const std::vector<int>& nodes) {
  if (nodes.empty()) {
    throw std::invalid_argument("ResourceManager: empty exact allocation");
  }
  // Validate first so the operation is atomic.
  for (int n : nodes) {
    if (n < 0 || n >= total_nodes_) {
      throw std::runtime_error("ResourceManager: node " + std::to_string(n) +
                               " out of range");
    }
    if (busy_[n]) {
      throw std::runtime_error("ResourceManager: node " + std::to_string(n) +
                               " already allocated");
    }
  }
  for (int n : nodes) {
    busy_[n] = true;
    free_.erase(n);
  }
}

void ResourceManager::Release(const std::vector<int>& nodes) {
  for (int n : nodes) {
    if (n < 0 || n >= total_nodes_ || !busy_[n] || down_.count(n)) {
      throw std::runtime_error("ResourceManager: releasing non-busy node " +
                               std::to_string(n));
    }
  }
  for (int n : nodes) {
    if (pending_down_.count(n)) {
      // Drain completes: the node leaves service instead of the free pool.
      pending_down_.erase(n);
      down_.insert(n);
      // stays busy_
    } else {
      busy_[n] = false;
      free_.insert(n);
    }
  }
}

void ResourceManager::MarkDown(const std::vector<int>& nodes) {
  for (int n : nodes) {
    if (n < 0 || n >= total_nodes_) {
      throw std::runtime_error("ResourceManager: down node " + std::to_string(n) +
                               " out of range");
    }
  }
  for (int n : nodes) {
    if (down_.count(n) || pending_down_.count(n)) continue;  // already draining/down
    if (!busy_[n]) {
      busy_[n] = true;
      free_.erase(n);
      down_.insert(n);
    } else {
      pending_down_.insert(n);  // drain: goes down when its job releases it
    }
  }
}

void ResourceManager::MarkUp(const std::vector<int>& nodes) {
  for (int n : nodes) {
    if (pending_down_.count(n)) continue;  // cancelling a drain is fine
    if (!down_.count(n)) {
      throw std::runtime_error("ResourceManager: node " + std::to_string(n) +
                               " is not down");
    }
  }
  for (int n : nodes) {
    if (pending_down_.erase(n)) continue;
    down_.erase(n);
    busy_[n] = false;
    free_.insert(n);
  }
}

void ResourceManager::MarkAsleep(int node) {
  if (node < 0 || node >= total_nodes_) {
    throw std::runtime_error("ResourceManager: sleeping node " +
                             std::to_string(node) + " out of range");
  }
  if (busy_[node]) {
    throw std::runtime_error(
        "ResourceManager: node " + std::to_string(node) +
        " cannot sleep while busy, down, or already asleep");
  }
  busy_[node] = true;
  free_.erase(node);
  asleep_.insert(node);
}

void ResourceManager::MarkAwake(int node) {
  if (!asleep_.erase(node)) {
    throw std::runtime_error("ResourceManager: waking node " +
                             std::to_string(node) + " that is not asleep");
  }
  busy_[node] = false;
  free_.insert(node);
}

std::vector<int> ResourceManager::FreeList() const {
  return std::vector<int>(free_.begin(), free_.end());
}

}  // namespace sraps
