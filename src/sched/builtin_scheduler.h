// The built-in scheduler (§3.2.5): replay plus FCFS/SJF/LJF/priority
// ordering with no-backfill, first-fit, or EASY backfill, the experimental
// account-derived incentive policies of §4.3, and the grid_aware policy
// that holds delayable jobs for cheaper/cleaner grid windows.
#pragma once

#include <memory>

#include "accounts/accounts.h"
#include "grid/grid_environment.h"
#include "sched/policies.h"
#include "sched/scheduler.h"

namespace sraps {

class BuiltinScheduler : public Scheduler {
 public:
  /// `accounts` must outlive the scheduler and is required for the
  /// account-derived policies (throws std::invalid_argument otherwise);
  /// it is the *collection-phase* snapshot, not mutated here.  `grid` must
  /// outlive the scheduler and carry a price or carbon signal for the
  /// grid_aware policy (throws otherwise).
  BuiltinScheduler(Policy policy, BackfillMode backfill,
                   const AccountRegistry* accounts = nullptr,
                   const GridEnvironment* grid = nullptr);

  std::string name() const override;

  std::vector<Placement> Schedule(const SchedulerContext& ctx) override;

  /// The built-in scheduler keeps no mutable state; a clone is a fresh
  /// instance with its pointers rebound to the fork's accounts/grid copies.
  std::unique_ptr<Scheduler> Clone(const SchedulerCloneContext& ctx) const override;

  /// Replay must run every tick: jobs start when their recorded time
  /// arrives, which is not an engine event.
  bool NeedsTimeTriggered() const override { return policy_ == Policy::kReplay; }

  /// race_to_idle and pace_to_cap manage node power states.
  bool WantsPowerStates() const override { return IsPowerStatePolicy(policy_); }

  /// race_to_idle: reset any down-clocked node to P0; with an empty queue,
  /// sleep every free node (S-state when the class has one, else C-state);
  /// with a non-empty queue, wake just enough sleepers — C before S, lowest
  /// id first — to cover the queued demand.  pace_to_cap: while the previous
  /// tick's wall draw exceeds the effective grid cap, step every busy node
  /// one ladder rung down; once a one-rung step-up provably fits under 95%
  /// of the cap, step back up.  Both are deterministic functions of the
  /// context, so forks replan identically.
  std::vector<PowerAction> PlanPowerStates(const SchedulerContext& ctx) override;

  Policy policy() const { return policy_; }
  BackfillMode backfill() const { return backfill_; }

  /// The sort key a policy assigns a job (higher runs earlier).  Exposed for
  /// tests and for external schedulers that want to reuse the ordering.
  double PriorityKey(const Job& job) const;

  /// grid_aware's hold decision: true when `job` should wait because a
  /// strictly cheaper/cleaner signal boundary is reachable within the grid
  /// environment's slack bound of the job's submit time.  Exposed for tests.
  bool HoldForCheaperWindow(const Job& job, SimTime now) const;

 private:
  std::vector<Placement> ScheduleReplay(const SchedulerContext& ctx) const;
  std::vector<Placement> ScheduleOrdered(const SchedulerContext& ctx) const;
  /// The node scorer of a thermal policy (lower = better), built over the
  /// context's inlet-temperature/recirculation view.  Null when the context
  /// carries no thermal topology — placements then fall back to the
  /// lowest-first allocation every non-thermal policy uses.
  std::function<double(int)> ThermalScorer(const SchedulerContext& ctx) const;

  Policy policy_;
  BackfillMode backfill_;
  const AccountRegistry* accounts_;
  const GridEnvironment* grid_;
};

/// Factory matching the CLI surface: builds the built-in scheduler from
/// policy/backfill names.  Throws std::invalid_argument on unknown names.
std::unique_ptr<Scheduler> MakeBuiltinScheduler(
    const std::string& policy, const std::string& backfill,
    const AccountRegistry* accounts = nullptr,
    const GridEnvironment* grid = nullptr);

}  // namespace sraps
