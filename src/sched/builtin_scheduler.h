// The built-in scheduler (§3.2.5): replay plus FCFS/SJF/LJF/priority
// ordering with no-backfill, first-fit, or EASY backfill, and the
// experimental account-derived incentive policies of §4.3.
#pragma once

#include <memory>

#include "accounts/accounts.h"
#include "sched/policies.h"
#include "sched/scheduler.h"

namespace sraps {

class BuiltinScheduler : public Scheduler {
 public:
  /// `accounts` must outlive the scheduler and is required for the
  /// account-derived policies (throws std::invalid_argument otherwise);
  /// it is the *collection-phase* snapshot, not mutated here.
  BuiltinScheduler(Policy policy, BackfillMode backfill,
                   const AccountRegistry* accounts = nullptr);

  std::string name() const override;

  std::vector<Placement> Schedule(const SchedulerContext& ctx) override;

  /// Replay must run every tick: jobs start when their recorded time
  /// arrives, which is not an engine event.
  bool NeedsTimeTriggered() const override { return policy_ == Policy::kReplay; }

  Policy policy() const { return policy_; }
  BackfillMode backfill() const { return backfill_; }

  /// The sort key a policy assigns a job (higher runs earlier).  Exposed for
  /// tests and for external schedulers that want to reuse the ordering.
  double PriorityKey(const Job& job) const;

 private:
  std::vector<Placement> ScheduleReplay(const SchedulerContext& ctx) const;
  std::vector<Placement> ScheduleOrdered(const SchedulerContext& ctx) const;

  Policy policy_;
  BackfillMode backfill_;
  const AccountRegistry* accounts_;
};

/// Factory matching the CLI surface: builds the built-in scheduler from
/// policy/backfill names.  Throws std::invalid_argument on unknown names.
std::unique_ptr<Scheduler> MakeBuiltinScheduler(
    const std::string& policy, const std::string& backfill,
    const AccountRegistry* accounts = nullptr);

}  // namespace sraps
