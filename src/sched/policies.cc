#include "sched/policies.h"

#include <mutex>

namespace sraps {
namespace {

void RegisterBuiltinPolicies(NamedRegistry<PolicyDef>& reg) {
  auto add = [&reg](const std::string& name, Policy id, bool needs_accounts,
                    std::string description) {
    const bool needs_grid = id == Policy::kGridAware;
    reg.Register(name,
                 PolicyDef{id, needs_accounts, needs_grid,
                           IsPowerStatePolicy(id), IsThermalPolicy(id),
                           ToString(id)},
                 std::move(description));
  };
  add("replay", Policy::kReplay, false, "re-enact the recorded schedule exactly");
  add("fcfs", Policy::kFcfs, false, "first-come first-served");
  add("sjf", Policy::kSjf, false, "shortest job first (runtime estimate)");
  add("ljf", Policy::kLjf, false, "largest job first (node count)");
  add("priority", Policy::kPriority, false, "dataset priority, descending");
  add("ml", Policy::kMl, false, "rank by the ML pipeline's score");
  add("grid_aware", Policy::kGridAware, false,
      "FCFS, delaying delayable jobs into cheap/clean grid windows");
  add("acct_avg_power", Policy::kAcctAvgPower, true,
      "descending account average power");
  add("acct_low_avg_power", Policy::kAcctLowAvgPower, true,
      "ascending account average power");
  add("acct_edp", Policy::kAcctEdp, true, "ascending account energy-delay product");
  add("acct_fugaku_pts", Policy::kAcctFugakuPts, true,
      "descending Fugaku points (Solorzano et al.)");
  add("race_to_idle", Policy::kRaceToIdle, false,
      "FCFS at full clock; sleep free nodes when the queue is empty");
  add("pace_to_cap", Policy::kPaceToCap, false,
      "FCFS; down-clock busy nodes to fit the effective grid cap");
  add("low_temp_first", Policy::kLowTempFirst, false,
      "FCFS; place jobs on the coolest node inlets");
  add("min_hr", Policy::kMinHr, false,
      "FCFS; place jobs where exhaust recirculates least");
  add("center_rack_first", Policy::kCenterRackFirst, false,
      "FCFS; fill centre racks first");
  add("best_edp", Policy::kBestEdp, false,
      "FCFS; combined inlet-rise + recirculation placement score");
}

void RegisterBuiltinBackfills(NamedRegistry<BackfillDef>& reg) {
  auto add = [&reg](const std::string& name, BackfillMode id, std::string description) {
    reg.Register(name, BackfillDef{id, ToString(id)}, std::move(description));
  };
  add("none", BackfillMode::kNone, "strict order; blocked head blocks everything");
  add("nobf", BackfillMode::kNone, "alias of none");
  add("firstfit", BackfillMode::kFirstFit, "start any queued job that fits now");
  add("first-fit", BackfillMode::kFirstFit, "alias of firstfit");
  add("easy", BackfillMode::kEasy, "backfill keeping the head job's reservation");
  add("conservative", BackfillMode::kConservative,
      "backfill keeping every queued job's reservation");
}

}  // namespace

NamedRegistry<PolicyDef>& PolicyRegistry() {
  static NamedRegistry<PolicyDef> registry("policy");
  static std::once_flag once;
  std::call_once(once, [] { RegisterBuiltinPolicies(registry); });
  return registry;
}

NamedRegistry<BackfillDef>& BackfillRegistry() {
  static NamedRegistry<BackfillDef> registry("backfill strategy");
  static std::once_flag once;
  std::call_once(once, [] { RegisterBuiltinBackfills(registry); });
  return registry;
}

std::optional<Policy> ParsePolicy(const std::string& name) {
  auto& reg = PolicyRegistry();
  if (!reg.Has(name)) return std::nullopt;
  return reg.Get(name).id;
}

std::string ToString(Policy p) {
  switch (p) {
    case Policy::kReplay: return "replay";
    case Policy::kFcfs: return "fcfs";
    case Policy::kSjf: return "sjf";
    case Policy::kLjf: return "ljf";
    case Policy::kPriority: return "priority";
    case Policy::kMl: return "ml";
    case Policy::kGridAware: return "grid_aware";
    case Policy::kAcctAvgPower: return "acct_avg_power";
    case Policy::kAcctLowAvgPower: return "acct_low_avg_power";
    case Policy::kAcctEdp: return "acct_edp";
    case Policy::kAcctFugakuPts: return "acct_fugaku_pts";
    case Policy::kRaceToIdle: return "race_to_idle";
    case Policy::kPaceToCap: return "pace_to_cap";
    case Policy::kLowTempFirst: return "low_temp_first";
    case Policy::kMinHr: return "min_hr";
    case Policy::kCenterRackFirst: return "center_rack_first";
    case Policy::kBestEdp: return "best_edp";
  }
  return "?";
}

std::optional<BackfillMode> ParseBackfill(const std::string& name) {
  if (name.empty()) return BackfillMode::kNone;
  auto& reg = BackfillRegistry();
  if (!reg.Has(name)) return std::nullopt;
  return reg.Get(name).id;
}

std::string ToString(BackfillMode m) {
  switch (m) {
    case BackfillMode::kNone: return "none";
    case BackfillMode::kFirstFit: return "firstfit";
    case BackfillMode::kEasy: return "easy";
    case BackfillMode::kConservative: return "conservative";
  }
  return "?";
}

bool IsAccountPolicy(Policy p) {
  switch (p) {
    case Policy::kAcctAvgPower:
    case Policy::kAcctLowAvgPower:
    case Policy::kAcctEdp:
    case Policy::kAcctFugakuPts:
      return true;
    default:
      return false;
  }
}

bool IsPowerStatePolicy(Policy p) {
  return p == Policy::kRaceToIdle || p == Policy::kPaceToCap;
}

bool IsThermalPolicy(Policy p) {
  switch (p) {
    case Policy::kLowTempFirst:
    case Policy::kMinHr:
    case Policy::kCenterRackFirst:
    case Policy::kBestEdp:
      return true;
    default:
      return false;
  }
}

}  // namespace sraps
