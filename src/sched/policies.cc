#include "sched/policies.h"

namespace sraps {

std::optional<Policy> ParsePolicy(const std::string& name) {
  if (name == "replay") return Policy::kReplay;
  if (name == "fcfs") return Policy::kFcfs;
  if (name == "sjf") return Policy::kSjf;
  if (name == "ljf") return Policy::kLjf;
  if (name == "priority") return Policy::kPriority;
  if (name == "ml") return Policy::kMl;
  if (name == "acct_avg_power") return Policy::kAcctAvgPower;
  if (name == "acct_low_avg_power") return Policy::kAcctLowAvgPower;
  if (name == "acct_edp") return Policy::kAcctEdp;
  if (name == "acct_fugaku_pts") return Policy::kAcctFugakuPts;
  return std::nullopt;
}

std::string ToString(Policy p) {
  switch (p) {
    case Policy::kReplay: return "replay";
    case Policy::kFcfs: return "fcfs";
    case Policy::kSjf: return "sjf";
    case Policy::kLjf: return "ljf";
    case Policy::kPriority: return "priority";
    case Policy::kMl: return "ml";
    case Policy::kAcctAvgPower: return "acct_avg_power";
    case Policy::kAcctLowAvgPower: return "acct_low_avg_power";
    case Policy::kAcctEdp: return "acct_edp";
    case Policy::kAcctFugakuPts: return "acct_fugaku_pts";
  }
  return "?";
}

std::optional<BackfillMode> ParseBackfill(const std::string& name) {
  if (name == "none" || name == "nobf" || name.empty()) return BackfillMode::kNone;
  if (name == "firstfit" || name == "first-fit") return BackfillMode::kFirstFit;
  if (name == "easy") return BackfillMode::kEasy;
  if (name == "conservative") return BackfillMode::kConservative;
  return std::nullopt;
}

std::string ToString(BackfillMode m) {
  switch (m) {
    case BackfillMode::kNone: return "none";
    case BackfillMode::kFirstFit: return "firstfit";
    case BackfillMode::kEasy: return "easy";
    case BackfillMode::kConservative: return "conservative";
  }
  return "?";
}

bool IsAccountPolicy(Policy p) {
  switch (p) {
    case Policy::kAcctAvgPower:
    case Policy::kAcctLowAvgPower:
    case Policy::kAcctEdp:
    case Policy::kAcctFugakuPts:
      return true;
    default:
      return false;
  }
}

}  // namespace sraps
