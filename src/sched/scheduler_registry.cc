#include "sched/scheduler_registry.h"

#include <mutex>

#include "sched/builtin_scheduler.h"

namespace sraps {

NamedRegistry<SchedulerFactory>& SchedulerRegistry() {
  static NamedRegistry<SchedulerFactory> registry("scheduler");
  static std::once_flag once;
  std::call_once(once, [] {
    // `experimental` is the artifact's name for the account-policy module;
    // both route to the built-in scheduler, which hosts all policies.
    const SchedulerFactory builtin = [](const SchedulerFactoryContext& ctx) {
      return MakeBuiltinScheduler(ctx.policy, ctx.backfill, ctx.accounts, ctx.grid);
    };
    registry.Register("default", builtin,
                      "built-in scheduler (replay + ordering policies + backfill)");
    registry.Register("experimental", builtin,
                      "built-in scheduler with the account-derived incentive policies");
  });
  return registry;
}

}  // namespace sraps
