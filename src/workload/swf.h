// Standard Workload Format (SWF) support — the interchange format of the
// Parallel Workloads Archive, cited by the paper (§3.2.2 [13]) as the
// baseline of what every scheduling simulator expects a dataloader to emit.
// Parsing SWF lets users bring the ~40 public archive traces to the twin.
#pragma once

#include <string>
#include <vector>

#include "workload/job.h"

namespace sraps {

/// Parses SWF text.  Header/comment lines start with ';' and are skipped.
/// Each data line has 18 whitespace-separated fields:
///   1 job id, 2 submit, 3 wait, 4 runtime, 5 used procs, 6 avg cpu time,
///   7 used mem, 8 requested procs, 9 requested time, 10 requested mem,
///   11 status, 12 user id, 13 group id, 14 executable, 15 queue,
///   16 partition, 17 preceding job, 18 think time
/// Mapping: nodes_required = ceil(requested procs / procs_per_node);
/// recorded_start = submit + wait; recorded_end = start + runtime;
/// time_limit = requested time; user/account from user/group ids;
/// cpu_util = constant trace of avg cpu time / runtime when both known.
/// Jobs with runtime < 0 or procs < 1 (failed/cancelled records) are skipped.
std::vector<Job> ParseSwf(const std::string& text, int procs_per_node = 1);

/// Loads and parses an SWF file.  Throws std::runtime_error if unreadable.
std::vector<Job> LoadSwf(const std::string& path, int procs_per_node = 1);

/// Serialises jobs back to SWF (one line per job, fields we do not model
/// written as -1).  Round-trips with ParseSwf for the modelled fields.
std::string WriteSwf(const std::vector<Job>& jobs, int procs_per_node = 1);

}  // namespace sraps
