#include "workload/job_queue.h"

#include <algorithm>

namespace sraps {

bool JobQueue::Remove(Handle h) {
  auto it = std::find(handles_.begin(), handles_.end(), h);
  if (it == handles_.end()) return false;
  handles_.erase(it);
  return true;
}

}  // namespace sraps
