#include "workload/job.h"

#include <cmath>
#include <stdexcept>

namespace sraps {

const char* ToString(JobState s) {
  switch (s) {
    case JobState::kPending: return "pending";
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kDismissed: return "dismissed";
  }
  return "?";
}

SimDuration Job::RecordedRuntime() const {
  if (recorded_start < 0 || recorded_end < 0 || recorded_end < recorded_start) {
    throw std::logic_error("Job " + std::to_string(id) + ": no recorded runtime");
  }
  return recorded_end - recorded_start;
}

SimDuration Job::RuntimeEstimate() const {
  if (time_limit > 0) return time_limit;
  if (recorded_start >= 0 && recorded_end >= recorded_start) return RecordedRuntime();
  throw std::logic_error("Job " + std::to_string(id) + ": no runtime estimate available");
}

SimDuration Job::WaitTime() const {
  if (start < 0) throw std::logic_error("Job " + std::to_string(id) + ": not started");
  return start - submit_time;
}

SimDuration Job::Turnaround() const {
  if (end < 0) throw std::logic_error("Job " + std::to_string(id) + ": not finished");
  return end - submit_time;
}

SimDuration Job::Runtime() const {
  if (start < 0 || end < 0) {
    throw std::logic_error("Job " + std::to_string(id) + ": not run");
  }
  return end - start;
}

double Job::NodeSeconds() const {
  return static_cast<double>(Runtime()) * static_cast<double>(nodes_required);
}

double Job::MeanNodePowerW() const {
  if (node_power_w.empty()) return std::nan("");
  if (start >= 0 && end > start) return node_power_w.MeanOver(end - start);
  return node_power_w.RawMean();
}

}  // namespace sraps
