// The job model.  A Job carries everything a dataloader can know about one
// batch job (§3.2.2): submit/start/end times, wall-time limit, node count or
// exact recorded placement, the per-job telemetry traces (utilisation and/or
// node power), accounting identity, and — after simulation — the realised
// schedule the engine produced.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "telemetry/trace_series.h"

namespace sraps {

using JobId = std::int64_t;

/// Lifecycle of a job inside the simulation engine.
enum class JobState {
  kPending,    ///< known to the dataloader, not yet submitted in sim time
  kQueued,     ///< submitted, waiting in the scheduler's queue
  kRunning,    ///< placed on nodes
  kCompleted,  ///< finished inside the simulation window
  kDismissed,  ///< outside the window (ended before start / submitted after end)
};

const char* ToString(JobState s);

struct Job {
  // --- identity -----------------------------------------------------------
  JobId id = 0;
  std::string name;
  std::string user;
  std::string account;

  // --- as recorded in the dataset ------------------------------------------
  SimTime submit_time = 0;
  SimTime recorded_start = -1;  ///< -1 when the dataset lacks it
  SimTime recorded_end = -1;
  SimDuration time_limit = 0;  ///< requested wall time; 0 = unknown
  int nodes_required = 1;
  /// Exact node placement from telemetry; used (and enforced) in replay mode.
  std::vector<int> recorded_nodes;
  /// Scheduler priority as provided by the dataset / site policy.
  double priority = 0.0;

  // --- telemetry ------------------------------------------------------------
  /// Per-node CPU utilisation in [0,1] as offsets from job start.
  TraceSeries cpu_util;
  /// Per-node GPU utilisation in [0,1]; empty for CPU-only systems.
  TraceSeries gpu_util;
  /// Direct per-node power trace in watts.  When non-empty it overrides the
  /// utilisation-based power model (the Adastra/Fugaku "job average power"
  /// style datasets provide this as a constant trace).
  TraceSeries node_power_w;

  // --- ML-guided scheduling (§4.4) -------------------------------------------
  /// Rank score assigned by the inference pipeline; higher runs earlier.
  double ml_score = 0.0;
  bool has_ml_score = false;

  // --- simulation results -----------------------------------------------------
  JobState state = JobState::kPending;
  SimTime start = -1;  ///< realised start (simulated or replayed)
  SimTime end = -1;    ///< realised end
  std::vector<int> assigned_nodes;
  /// §3.2.2 edge-case flags: no ground-truth telemetry at the head/tail.
  TraceFlags trace_flags;

  // --- derived ------------------------------------------------------------
  /// Runtime recorded in the dataset.  Throws if recorded_start/end unset.
  SimDuration RecordedRuntime() const;
  /// Wall-time estimate the scheduler may use: the time limit when present,
  /// otherwise the recorded runtime (perfect estimate).
  SimDuration RuntimeEstimate() const;
  /// Realised wait: start - submit.  Requires the job to have started.
  SimDuration WaitTime() const;
  /// Realised turnaround: end - submit.  Requires the job to have finished.
  SimDuration Turnaround() const;
  /// Realised runtime: end - start.
  SimDuration Runtime() const;
  /// Node-seconds of the realised run ("area" in packing metrics).
  double NodeSeconds() const;
  /// Mean per-node power (W) over the realised runtime: the direct trace if
  /// present, otherwise NaN (the power model owns utilisation conversion).
  double MeanNodePowerW() const;

  /// True when the dataset pins the job to explicit nodes.
  bool HasRecordedPlacement() const { return !recorded_nodes.empty(); }
};

}  // namespace sraps
