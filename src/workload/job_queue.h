// The scheduler-visible job queue (§3.2.3 step 2).  Jobs enter only once
// their submit time has passed — the digital twin observes jobs as they are
// submitted, exactly like a real system, so schedules cannot be precomputed.
#pragma once

#include <cstddef>
#include <vector>

#include "workload/job.h"

namespace sraps {

/// Holds indices into an external job vector (the engine owns Job storage;
/// the queue holds stable handles).  Order is submission order until a
/// policy re-sorts it.
class JobQueue {
 public:
  using Handle = std::size_t;  ///< index into the engine's job array

  void Push(Handle h) { handles_.push_back(h); }
  bool empty() const { return handles_.empty(); }
  std::size_t size() const { return handles_.size(); }

  const std::vector<Handle>& handles() const { return handles_; }
  std::vector<Handle>& mutable_handles() { return handles_; }

  /// Removes a specific handle; returns false if absent.
  bool Remove(Handle h);

  void Clear() { handles_.clear(); }

 private:
  std::vector<Handle> handles_;
};

}  // namespace sraps
