#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/mathutil.h"

namespace sraps {

std::string SyntheticAccountName(int i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "acct%02d", i);
  return buf;
}

std::string SyntheticUserName(int account, int user) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "u%02d_%02d", account, user);
  return buf;
}

TraceSeries MakePhasedUtilTrace(Rng& rng, SimDuration runtime, SimDuration interval,
                                double plateau, double noise_sd) {
  if (interval <= 0) interval = 1;
  std::vector<SimDuration> offsets;
  std::vector<double> values;
  const SimDuration ramp = std::max<SimDuration>(interval, runtime / 20);
  const SimDuration tail = std::max<SimDuration>(interval, runtime / 25);
  for (SimDuration t = 0; t < runtime; t += interval) {
    double base;
    if (t < ramp) {
      base = plateau * static_cast<double>(t + interval) /
             static_cast<double>(ramp + interval);
    } else if (t >= runtime - tail) {
      base = plateau * 0.4;
    } else {
      base = plateau;
    }
    const double noisy = base * (1.0 + rng.Normal(0.0, noise_sd));
    offsets.push_back(t);
    values.push_back(Clamp(noisy, 0.0, 1.0));
  }
  if (offsets.empty()) {
    offsets.push_back(0);
    values.push_back(Clamp(plateau, 0.0, 1.0));
  }
  return TraceSeries(std::move(offsets), std::move(values));
}

std::vector<Job> GenerateSyntheticWorkload(const SyntheticWorkloadSpec& spec,
                                           JobId first_id) {
  Rng rng(spec.seed);
  std::vector<Job> jobs;

  // Zipf-ish account weights: account i has weight 1/(i+1); heavy users exist.
  std::vector<double> acct_weights;
  for (int i = 0; i < spec.num_accounts; ++i) acct_weights.push_back(1.0 / (i + 1));

  const double rate_per_sec = spec.arrival_rate_per_hour / 3600.0;
  double t = static_cast<double>(spec.first_submit);
  JobId next_id = first_id;
  while (true) {
    t += rng.Exponential(rate_per_sec);
    const SimTime submit = static_cast<SimTime>(t);
    if (submit >= spec.first_submit + spec.horizon) break;

    Job job;
    job.id = next_id++;
    job.name = "synth-" + std::to_string(job.id);
    const int acct = static_cast<int>(rng.Categorical(acct_weights));
    job.account = SyntheticAccountName(acct);
    job.user = SyntheticUserName(
        acct, static_cast<int>(rng.UniformInt(0, spec.num_users_per_account - 1)));
    job.submit_time = submit;

    // Node count: 2^N(mu, sd), rounded, clamped to [1, max_nodes].
    const double raw_log2 = rng.Normal(spec.mean_nodes_log2, spec.sd_nodes_log2);
    const double raw_nodes = std::pow(2.0, raw_log2);
    job.nodes_required = static_cast<int>(
        Clamp(std::round(raw_nodes), 1.0, static_cast<double>(spec.max_nodes)));

    const auto runtime = static_cast<SimDuration>(
        Clamp(rng.LogNormal(spec.runtime_mu, spec.runtime_sigma), 60.0, 7.0 * kDay));
    job.recorded_start = submit;  // dataloaders overwrite with replay schedules
    job.recorded_end = submit + runtime;
    job.time_limit = static_cast<SimDuration>(
        static_cast<double>(runtime) * std::max(1.0, spec.overestimate_factor));
    job.priority = rng.Uniform(0.0, spec.priority_max);

    Rng trace_rng = rng.Split();
    const double cpu_plateau = Clamp(rng.Normal(spec.mean_cpu_util, 0.15), 0.05, 1.0);
    job.cpu_util =
        MakePhasedUtilTrace(trace_rng, runtime, spec.trace_interval, cpu_plateau);
    if (spec.gpu_jobs && rng.NextDouble() < 0.8) {
      const double gpu_plateau = Clamp(rng.Normal(spec.mean_gpu_util, 0.2), 0.0, 1.0);
      job.gpu_util =
          MakePhasedUtilTrace(trace_rng, runtime, spec.trace_interval, gpu_plateau);
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace sraps
