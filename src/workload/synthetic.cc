#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>

#include "common/mathutil.h"

namespace sraps {

std::string SyntheticAccountName(int i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "acct%02d", i);
  return buf;
}

std::string SyntheticUserName(int account, int user) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "u%02d_%02d", account, user);
  return buf;
}

TraceSeries MakePhasedUtilTrace(Rng& rng, SimDuration runtime, SimDuration interval,
                                double plateau, double noise_sd) {
  if (interval <= 0) interval = 1;
  std::vector<SimDuration> offsets;
  std::vector<double> values;
  const SimDuration ramp = std::max<SimDuration>(interval, runtime / 20);
  const SimDuration tail = std::max<SimDuration>(interval, runtime / 25);
  for (SimDuration t = 0; t < runtime; t += interval) {
    double base;
    if (t < ramp) {
      base = plateau * static_cast<double>(t + interval) /
             static_cast<double>(ramp + interval);
    } else if (t >= runtime - tail) {
      base = plateau * 0.4;
    } else {
      base = plateau;
    }
    const double noisy = base * (1.0 + rng.Normal(0.0, noise_sd));
    offsets.push_back(t);
    values.push_back(Clamp(noisy, 0.0, 1.0));
  }
  if (offsets.empty()) {
    offsets.push_back(0);
    values.push_back(Clamp(plateau, 0.0, 1.0));
  }
  return TraceSeries(std::move(offsets), std::move(values));
}

std::vector<Job> GenerateSyntheticWorkload(const SyntheticWorkloadSpec& spec,
                                           JobId first_id) {
  Rng rng(spec.seed);
  std::vector<Job> jobs;

  // Zipf-ish account weights: account i has weight 1/(i+1); heavy users exist.
  std::vector<double> acct_weights;
  for (int i = 0; i < spec.num_accounts; ++i) acct_weights.push_back(1.0 / (i + 1));

  const double rate_per_sec = spec.arrival_rate_per_hour / 3600.0;
  double t = static_cast<double>(spec.first_submit);
  JobId next_id = first_id;
  while (true) {
    t += rng.Exponential(rate_per_sec);
    const SimTime submit = static_cast<SimTime>(t);
    if (submit >= spec.first_submit + spec.horizon) break;

    Job job;
    job.id = next_id++;
    job.name = "synth-" + std::to_string(job.id);
    const int acct = static_cast<int>(rng.Categorical(acct_weights));
    job.account = SyntheticAccountName(acct);
    job.user = SyntheticUserName(
        acct, static_cast<int>(rng.UniformInt(0, spec.num_users_per_account - 1)));
    job.submit_time = submit;

    // Node count: 2^N(mu, sd), rounded, clamped to [1, max_nodes].
    const double raw_log2 = rng.Normal(spec.mean_nodes_log2, spec.sd_nodes_log2);
    const double raw_nodes = std::pow(2.0, raw_log2);
    job.nodes_required = static_cast<int>(
        Clamp(std::round(raw_nodes), 1.0, static_cast<double>(spec.max_nodes)));

    const auto runtime = static_cast<SimDuration>(
        Clamp(rng.LogNormal(spec.runtime_mu, spec.runtime_sigma), 60.0, 7.0 * kDay));
    job.recorded_start = submit;  // dataloaders overwrite with replay schedules
    job.recorded_end = submit + runtime;
    job.time_limit = static_cast<SimDuration>(
        static_cast<double>(runtime) * std::max(1.0, spec.overestimate_factor));
    job.priority = rng.Uniform(0.0, spec.priority_max);

    Rng trace_rng = rng.Split();
    const double cpu_plateau = Clamp(rng.Normal(spec.mean_cpu_util, 0.15), 0.05, 1.0);
    job.cpu_util =
        MakePhasedUtilTrace(trace_rng, runtime, spec.trace_interval, cpu_plateau);
    if (spec.gpu_jobs && rng.NextDouble() < 0.8) {
      const double gpu_plateau = Clamp(rng.Normal(spec.mean_gpu_util, 0.2), 0.0, 1.0);
      job.gpu_util =
          MakePhasedUtilTrace(trace_rng, runtime, spec.trace_interval, gpu_plateau);
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

JsonValue SyntheticWorkloadSpec::ToJson() const {
  JsonObject obj;
  obj["first_submit"] = JsonValue(static_cast<std::int64_t>(first_submit));
  obj["horizon"] = JsonValue(static_cast<std::int64_t>(horizon));
  obj["arrival_rate_per_hour"] = arrival_rate_per_hour;
  obj["max_nodes"] = max_nodes;
  obj["mean_nodes_log2"] = mean_nodes_log2;
  obj["sd_nodes_log2"] = sd_nodes_log2;
  obj["runtime_mu"] = runtime_mu;
  obj["runtime_sigma"] = runtime_sigma;
  obj["overestimate_factor"] = overestimate_factor;
  obj["mean_cpu_util"] = mean_cpu_util;
  obj["mean_gpu_util"] = mean_gpu_util;
  obj["gpu_jobs"] = gpu_jobs;
  obj["trace_interval"] = JsonValue(static_cast<std::int64_t>(trace_interval));
  obj["num_accounts"] = num_accounts;
  obj["num_users_per_account"] = num_users_per_account;
  obj["priority_max"] = priority_max;
  obj["seed"] = JsonValue(static_cast<std::int64_t>(seed));
  return JsonValue(std::move(obj));
}

SyntheticWorkloadSpec SyntheticWorkloadSpec::FromJson(const JsonValue& v) {
  SyntheticWorkloadSpec spec;
  for (const auto& [key, value] : v.AsObject()) {
    if (key == "first_submit") {
      spec.first_submit = value.AsInt();
    } else if (key == "horizon") {
      spec.horizon = value.AsInt();
    } else if (key == "arrival_rate_per_hour") {
      spec.arrival_rate_per_hour = value.AsDouble();
    } else if (key == "max_nodes") {
      spec.max_nodes = static_cast<int>(value.AsInt());
    } else if (key == "mean_nodes_log2") {
      spec.mean_nodes_log2 = value.AsDouble();
    } else if (key == "sd_nodes_log2") {
      spec.sd_nodes_log2 = value.AsDouble();
    } else if (key == "runtime_mu") {
      spec.runtime_mu = value.AsDouble();
    } else if (key == "runtime_sigma") {
      spec.runtime_sigma = value.AsDouble();
    } else if (key == "overestimate_factor") {
      spec.overestimate_factor = value.AsDouble();
    } else if (key == "mean_cpu_util") {
      spec.mean_cpu_util = value.AsDouble();
    } else if (key == "mean_gpu_util") {
      spec.mean_gpu_util = value.AsDouble();
    } else if (key == "gpu_jobs") {
      spec.gpu_jobs = value.AsBool();
    } else if (key == "trace_interval") {
      spec.trace_interval = value.AsInt();
    } else if (key == "num_accounts") {
      spec.num_accounts = static_cast<int>(value.AsInt());
    } else if (key == "num_users_per_account") {
      spec.num_users_per_account = static_cast<int>(value.AsInt());
    } else if (key == "priority_max") {
      spec.priority_max = value.AsDouble();
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(value.AsInt());
    } else {
      throw std::invalid_argument("SyntheticWorkloadSpec: unknown key '" + key + "'");
    }
  }
  return spec;
}

SyntheticWorkloadSpec CalibrateSyntheticWorkload(const std::vector<Job>& jobs) {
  if (jobs.empty()) {
    throw std::invalid_argument("CalibrateSyntheticWorkload: no jobs to fit");
  }
  SyntheticWorkloadSpec spec;

  SimTime first_submit = jobs.front().submit_time;
  SimTime last_submit = jobs.front().submit_time;
  int max_nodes = 1;
  std::vector<double> log2_nodes;
  std::vector<double> log_runtimes;
  std::vector<double> overestimates;
  std::vector<double> cpu_plateaus;
  std::vector<double> gpu_plateaus;
  std::set<std::string> accounts;
  std::set<std::string> users;
  double priority_max = 0.0;
  SimDuration trace_interval = 0;
  for (const Job& job : jobs) {
    first_submit = std::min(first_submit, job.submit_time);
    last_submit = std::max(last_submit, job.submit_time);
    max_nodes = std::max(max_nodes, job.nodes_required);
    log2_nodes.push_back(std::log2(std::max(1, job.nodes_required)));
    if (job.recorded_start >= 0 && job.recorded_end > job.recorded_start) {
      const auto runtime = static_cast<double>(job.recorded_end - job.recorded_start);
      log_runtimes.push_back(std::log(runtime));
      if (job.time_limit > 0) {
        overestimates.push_back(static_cast<double>(job.time_limit) / runtime);
      }
    }
    if (!job.cpu_util.empty()) cpu_plateaus.push_back(job.cpu_util.RawMean());
    if (!job.gpu_util.empty()) gpu_plateaus.push_back(job.gpu_util.RawMean());
    if (trace_interval == 0 && job.cpu_util.offsets().size() >= 2) {
      trace_interval = job.cpu_util.offsets()[1] - job.cpu_util.offsets()[0];
    }
    if (!job.account.empty()) accounts.insert(job.account);
    if (!job.user.empty()) users.insert(job.user);
    priority_max = std::max(priority_max, job.priority);
  }

  spec.first_submit = first_submit;
  spec.horizon = std::max<SimDuration>(last_submit - first_submit, kHour);
  spec.arrival_rate_per_hour = static_cast<double>(jobs.size()) /
                               (static_cast<double>(spec.horizon) / kHour);
  spec.max_nodes = max_nodes;
  spec.mean_nodes_log2 = Mean(log2_nodes);
  spec.sd_nodes_log2 = StdDev(log2_nodes);
  if (!log_runtimes.empty()) {
    spec.runtime_mu = Mean(log_runtimes);
    spec.runtime_sigma = StdDev(log_runtimes);
  }
  if (!overestimates.empty()) {
    spec.overestimate_factor = std::max(1.0, Mean(overestimates));
  }
  if (!cpu_plateaus.empty()) {
    spec.mean_cpu_util = Clamp(Mean(cpu_plateaus), 0.05, 1.0);
  }
  spec.gpu_jobs = !gpu_plateaus.empty();
  if (!gpu_plateaus.empty()) {
    spec.mean_gpu_util = Clamp(Mean(gpu_plateaus), 0.0, 1.0);
  }
  if (trace_interval > 0) spec.trace_interval = trace_interval;
  spec.num_accounts = std::max<int>(1, static_cast<int>(accounts.size()));
  spec.num_users_per_account = std::max<int>(
      1, static_cast<int>(users.size() / std::max<std::size_t>(1, accounts.size())));
  if (priority_max > 0) spec.priority_max = priority_max;
  return spec;
}

}  // namespace sraps
