#include "workload/swf.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/mathutil.h"

namespace sraps {

std::vector<Job> ParseSwf(const std::string& text, int procs_per_node) {
  if (procs_per_node < 1) throw std::invalid_argument("ParseSwf: procs_per_node < 1");
  std::vector<Job> jobs;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    // Strip comments and blank lines.
    const auto semi = line.find(';');
    if (semi != std::string::npos) line = line.substr(0, semi);
    std::istringstream ls(line);
    std::vector<double> f;
    double v;
    while (ls >> v) f.push_back(v);
    if (f.empty()) continue;
    if (f.size() < 18) {
      throw std::runtime_error("SWF: expected 18 fields, got " +
                               std::to_string(f.size()));
    }
    const double runtime = f[3];
    double procs = f[7] > 0 ? f[7] : f[4];  // requested, falling back to used
    if (runtime < 0 || procs < 1) continue;  // failed/cancelled record

    Job job;
    job.id = static_cast<JobId>(f[0]);
    job.name = "swf-" + std::to_string(job.id);
    job.submit_time = static_cast<SimTime>(f[1]);
    const double wait = f[2] >= 0 ? f[2] : 0;
    job.recorded_start = job.submit_time + static_cast<SimTime>(wait);
    job.recorded_end = job.recorded_start + static_cast<SimTime>(runtime);
    job.nodes_required =
        static_cast<int>(std::ceil(procs / static_cast<double>(procs_per_node)));
    if (f[8] > 0) job.time_limit = static_cast<SimDuration>(f[8]);
    job.user = "user" + std::to_string(static_cast<long long>(f[11]));
    job.account = "group" + std::to_string(static_cast<long long>(f[12]));
    job.priority = f[14] >= 0 ? f[14] : 0.0;  // queue number as a priority proxy
    if (f[5] > 0 && runtime > 0) {
      job.cpu_util = TraceSeries::Constant(Clamp(f[5] / runtime, 0.0, 1.0));
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<Job> LoadSwf(const std::string& path, int procs_per_node) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("SWF: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseSwf(ss.str(), procs_per_node);
}

std::string WriteSwf(const std::vector<Job>& jobs, int procs_per_node) {
  std::ostringstream out;
  out << "; SWF written by sraps\n";
  for (const Job& j : jobs) {
    const long long wait =
        j.recorded_start >= 0 ? static_cast<long long>(j.recorded_start - j.submit_time)
                              : -1;
    const long long runtime =
        (j.recorded_start >= 0 && j.recorded_end >= 0)
            ? static_cast<long long>(j.recorded_end - j.recorded_start)
            : -1;
    const long long procs = static_cast<long long>(j.nodes_required) * procs_per_node;
    double avg_cpu = -1;
    if (!j.cpu_util.empty() && runtime > 0) avg_cpu = j.cpu_util.RawMean() * runtime;
    out << j.id << ' ' << j.submit_time << ' ' << wait << ' ' << runtime << ' ' << procs
        << ' ' << avg_cpu << ' ' << -1 << ' ' << procs << ' '
        << (j.time_limit > 0 ? static_cast<long long>(j.time_limit) : -1) << ' ' << -1
        << ' ' << 1 << ' ' << -1 << ' ' << -1 << ' ' << -1 << ' '
        << static_cast<long long>(j.priority) << ' ' << -1 << ' ' << -1 << ' ' << -1
        << '\n';
  }
  return out.str();
}

}  // namespace sraps
