// Synthetic workload generation.  Where the paper replays Zenodo datasets we
// generate dataset-shaped workloads: Poisson arrivals, log-normal runtimes,
// power-of-two-biased node counts, and per-job utilisation traces with
// phase structure (ramp-up, plateau with noise, tail), so the power model
// sees realistic temporal variation.
#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "common/time.h"
#include "workload/job.h"

namespace sraps {

/// Knobs for the generic generator.  Defaults approximate a mid-size
/// capacity system at healthy load.
struct SyntheticWorkloadSpec {
  SimTime first_submit = 0;
  /// Submissions span [first_submit, first_submit + horizon).
  SimDuration horizon = 24 * kHour;
  double arrival_rate_per_hour = 40;  ///< Poisson arrival intensity
  int max_nodes = 256;                ///< cap node requests at the machine size
  double mean_nodes_log2 = 3.0;       ///< node count ~ 2^Normal(mean, sd), clamped
  double sd_nodes_log2 = 2.0;
  double runtime_mu = 8.0;            ///< runtime ~ LogNormal(mu, sigma) seconds
  double runtime_sigma = 1.2;
  double overestimate_factor = 1.6;   ///< time_limit = runtime * factor (users pad)
  double mean_cpu_util = 0.65;        ///< plateau CPU utilisation
  double mean_gpu_util = 0.55;        ///< plateau GPU utilisation (if system has GPUs)
  bool gpu_jobs = true;
  SimDuration trace_interval = 20;    ///< telemetry sample spacing
  int num_accounts = 12;              ///< accounts drawn Zipf-like
  int num_users_per_account = 4;
  double priority_max = 100.0;        ///< priorities uniform in [0, priority_max]
  std::uint64_t seed = 42;

  /// Serialises every knob with deterministic key order, so sweep files can
  /// describe a synthetic workload and axes can override individual knobs.
  JsonValue ToJson() const;
  /// Inverse of ToJson.  Unknown keys throw std::invalid_argument; missing
  /// keys keep their defaults.
  static SyntheticWorkloadSpec FromJson(const JsonValue& v);
};

/// Fits a SyntheticWorkloadSpec to a loaded trace: Poisson arrival rate from
/// the submit span, log2-normal node counts, log-normal runtimes, time-limit
/// overestimation factor, utilisation plateaus and trace spacing from the
/// recorded telemetry, and the account/user population.  The returned spec
/// keeps the default seed; a sweep varies it (and `horizon`) to scale job
/// counts beyond the recorded trace.  Throws std::invalid_argument on an
/// empty job list.
SyntheticWorkloadSpec CalibrateSyntheticWorkload(const std::vector<Job>& jobs);

/// Generates a full job list (sorted by submit time, ids dense from
/// `first_id`).  Each job gets cpu/gpu utilisation traces with a ramp /
/// plateau / tail shape and multiplicative noise.
std::vector<Job> GenerateSyntheticWorkload(const SyntheticWorkloadSpec& spec,
                                           JobId first_id = 1);

/// Builds a phase-structured utilisation trace: a ramp to the plateau over
/// ~5% of the runtime, a noisy plateau, and a decay tail.  Exposed for tests
/// and for the dataset-specific generators.
TraceSeries MakePhasedUtilTrace(Rng& rng, SimDuration runtime, SimDuration interval,
                                double plateau, double noise_sd = 0.08);

/// An account name for index i ("acct00".."acctNN") — shared by generators
/// and the incentive-structure benches so account identities line up.
std::string SyntheticAccountName(int i);
std::string SyntheticUserName(int account, int user);

}  // namespace sraps
