// Grid-signal time series (§3.2.6): electricity price, carbon intensity,
// and demand-response schedules are arbitrary step functions of *absolute*
// simulation time — unlike the per-job TraceSeries, whose samples are
// offsets from a job's start.  A GridSignal holds its value between
// boundaries (step hold), optionally repeats with a fixed period (diurnal
// profiles), and can report the next time its value may change
// (NextBoundaryAfter) so the engine's event calendar can hop over
// signal-flat spans without losing bit-identity to the tick loop.
//
// Signals remember how they were constructed (constant / diurnal / hourly /
// steps / csv) so they serialise back to the same JSON "kind" they were
// parsed from, and carry a multiplicative `scale` so sweeps can dial a whole
// price or carbon curve up and down through one axis ("grid.price.scale").
#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "common/time.h"

namespace sraps {

class GridSignal {
 public:
  /// Default-constructed signals are empty ("absent"): At() throws, and the
  /// GridEnvironment treats them as disabled.
  GridSignal() = default;

  /// Flat signal (classic constant-factor price/carbon accounting).
  static GridSignal Constant(double value);

  /// Day-periodic profile sampled hourly: entry h applies to [h:00, h+1:00)
  /// of every simulated day.  Must contain exactly 24 entries.
  static GridSignal Hourly(std::vector<double> hourly);

  /// A stylised diurnal curve (same shape the carbon module has always
  /// used): `base` overnight, dipping to `base*dip` around 13:00 (solar),
  /// peaking at `base*peak` around 19:00.  Day-periodic, hourly resolution.
  static GridSignal Diurnal(double base, double dip = 0.6, double peak = 1.3);

  /// Non-periodic step function: value[i] holds over [times[i], times[i+1]),
  /// the first value back-fills before times[0], the last holds forever.
  /// Times must be strictly increasing.  Throws std::invalid_argument.
  static GridSignal Steps(std::vector<SimTime> times, std::vector<double> values);

  /// Loads a non-periodic step series from a CSV file with "time,value"
  /// columns (absolute sim seconds).  The path is remembered so ToJson
  /// round-trips as {"kind": "csv", "path": ...}.  Throws std::runtime_error
  /// on I/O failure, std::invalid_argument on malformed data.
  static GridSignal FromCsv(const std::string& path);

  bool empty() const { return values_.empty(); }
  std::size_t size() const { return values_.size(); }
  /// True when At() cannot change over time (single sample).
  bool is_flat() const { return values_.size() <= 1; }
  /// Repeat period in seconds; 0 = non-periodic.
  SimDuration period() const { return period_; }
  double scale() const { return scale_; }
  /// Multiplies every value returned by At().  Throws on negative or
  /// non-finite scales.
  void SetScale(double scale);

  /// Value at an absolute sim time (scale applied).  Periodic signals fold
  /// `t` into [0, period); negative times are handled.  Throws
  /// std::logic_error on an empty signal.
  double At(SimTime t) const;

  /// Smallest absolute time strictly greater than `t` at which At() can next
  /// change, or -1 when the signal is flat from `t` onwards.  Periodic
  /// signals always have a next boundary (unless flat); the engine bounds
  /// its batched spans with this, exactly like TraceSeries::NextOffsetAfter.
  SimTime NextBoundaryAfter(SimTime t) const;

  /// Arithmetic mean of the step values (scale applied) — the flat-
  /// equivalent intensity used by carbon timing-factor reporting.
  double MeanValue() const;

  /// Serialises to the constructor form: {"kind": "constant"|"diurnal"|
  /// "hourly"|"steps"|"csv", ..., "scale": s}.  Empty signals serialise to
  /// JSON null (the environment omits them).
  JsonValue ToJson() const;

  /// Inverse of ToJson; null or missing -> empty signal.  Unknown keys and
  /// malformed kinds throw std::invalid_argument.  "csv" kinds load the file
  /// at parse time.
  static GridSignal FromJson(const JsonValue& v);

  /// Boundary times: absolute (non-periodic) or within [0, period()).
  const std::vector<SimTime>& times() const { return times_; }
  /// Step values, unscaled (At() applies the scale).
  const std::vector<double>& values() const { return values_; }

 private:
  enum class Kind { kEmpty, kConstant, kDiurnal, kHourly, kSteps, kCsv };

  Kind kind_ = Kind::kEmpty;
  /// Boundary times: absolute (non-periodic) or within [0, period_).
  std::vector<SimTime> times_;
  std::vector<double> values_;
  SimDuration period_ = 0;
  double scale_ = 1.0;
  // Constructor provenance, so ToJson reproduces the input form.
  double diurnal_base_ = 0.0, diurnal_dip_ = 0.0, diurnal_peak_ = 0.0;
  std::string csv_path_;
};

}  // namespace sraps
