#include "grid/grid_signal.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/csv.h"

namespace sraps {
namespace {

void CheckSteps(const std::vector<SimTime>& times, const std::vector<double>& values,
                bool periodic, SimDuration period) {
  if (times.size() != values.size()) {
    throw std::invalid_argument("GridSignal: times/values size mismatch (" +
                                std::to_string(times.size()) + " vs " +
                                std::to_string(values.size()) + ")");
  }
  if (times.empty()) {
    throw std::invalid_argument("GridSignal: a step series needs >= 1 sample");
  }
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (!std::isfinite(values[i])) {
      throw std::invalid_argument("GridSignal: non-finite value at index " +
                                  std::to_string(i));
    }
    if (i > 0 && times[i] <= times[i - 1]) {
      throw std::invalid_argument("GridSignal: times must be strictly increasing "
                                  "(times[" + std::to_string(i) + "] = " +
                                  std::to_string(times[i]) + " <= " +
                                  std::to_string(times[i - 1]) + ")");
    }
    if (periodic && (times[i] < 0 || times[i] >= period)) {
      throw std::invalid_argument("GridSignal: periodic boundary " +
                                  std::to_string(times[i]) + " outside [0, " +
                                  std::to_string(period) + ")");
    }
  }
}

}  // namespace

GridSignal GridSignal::Constant(double value) {
  if (!std::isfinite(value)) {
    throw std::invalid_argument("GridSignal: constant value must be finite");
  }
  GridSignal s;
  s.kind_ = Kind::kConstant;
  s.times_ = {0};
  s.values_ = {value};
  return s;
}

GridSignal GridSignal::Hourly(std::vector<double> hourly) {
  if (hourly.size() != 24) {
    throw std::invalid_argument("GridSignal: hourly profile needs exactly 24 "
                                "values, got " + std::to_string(hourly.size()));
  }
  GridSignal s;
  s.kind_ = Kind::kHourly;
  s.times_.reserve(24);
  for (int h = 0; h < 24; ++h) s.times_.push_back(h * kHour);
  s.values_ = std::move(hourly);
  s.period_ = kDay;
  CheckSteps(s.times_, s.values_, /*periodic=*/true, kDay);
  return s;
}

GridSignal GridSignal::Diurnal(double base, double dip, double peak) {
  std::vector<double> hourly(24);
  for (int h = 0; h < 24; ++h) {
    // Solar dip centred on 13:00 with ~4 h half-width; evening peak centred
    // on 19:00, narrower — identical arithmetic to the original carbon
    // profile so the delegating CarbonIntensityProfile stays bit-identical.
    const double dip_w = std::exp(-0.5 * std::pow((h - 13.0) / 3.0, 2.0));
    const double peak_w = std::exp(-0.5 * std::pow((h - 19.0) / 2.0, 2.0));
    double v = base;
    v -= base * (1.0 - dip) * dip_w;
    v += base * (peak - 1.0) * peak_w;
    hourly[h] = std::max(0.0, v);
  }
  GridSignal s = Hourly(std::move(hourly));
  s.kind_ = Kind::kDiurnal;
  s.diurnal_base_ = base;
  s.diurnal_dip_ = dip;
  s.diurnal_peak_ = peak;
  return s;
}

GridSignal GridSignal::Steps(std::vector<SimTime> times, std::vector<double> values) {
  CheckSteps(times, values, /*periodic=*/false, 0);
  GridSignal s;
  s.kind_ = Kind::kSteps;
  s.times_ = std::move(times);
  s.values_ = std::move(values);
  return s;
}

GridSignal GridSignal::FromCsv(const std::string& path) {
  const CsvTable table = CsvTable::Load(path);
  if (!table.ColumnIndex("time") || !table.ColumnIndex("value")) {
    throw std::invalid_argument("GridSignal: '" + path +
                                "' needs 'time' and 'value' columns");
  }
  std::vector<SimTime> times;
  std::vector<double> values;
  times.reserve(table.num_rows());
  values.reserve(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    const auto t = table.GetInt(r, "time");
    const auto v = table.GetDouble(r, "value");
    if (!t || !v) {
      throw std::invalid_argument("GridSignal: '" + path + "' row " +
                                  std::to_string(r) + " has an empty cell");
    }
    times.push_back(*t);
    values.push_back(*v);
  }
  GridSignal s = Steps(std::move(times), std::move(values));
  s.kind_ = Kind::kCsv;
  s.csv_path_ = path;
  return s;
}

void GridSignal::SetScale(double scale) {
  if (!std::isfinite(scale) || scale < 0.0) {
    throw std::invalid_argument("GridSignal: scale must be finite and >= 0, got " +
                                std::to_string(scale));
  }
  scale_ = scale;
}

double GridSignal::At(SimTime t) const {
  if (empty()) throw std::logic_error("GridSignal: sampling an empty signal");
  SimTime q = t;
  if (period_ > 0) q = ((t % period_) + period_) % period_;
  if (q < times_.front()) {
    // Periodic: the span before the first boundary wraps around from the
    // last value of the previous period; non-periodic: head fill.
    return (period_ > 0 ? values_.back() : values_.front()) * scale_;
  }
  const auto it = std::upper_bound(times_.begin(), times_.end(), q);
  return values_[static_cast<std::size_t>(it - times_.begin()) - 1] * scale_;
}

SimTime GridSignal::NextBoundaryAfter(SimTime t) const {
  if (is_flat()) return -1;
  if (period_ > 0) {
    const SimTime fold = ((t % period_) + period_) % period_;
    const SimTime base = t - fold;  // start of the enclosing period
    const auto it = std::upper_bound(times_.begin(), times_.end(), fold);
    if (it != times_.end()) return base + *it;
    // Wrap into the next period's first boundary.
    return base + period_ + times_.front();
  }
  // Non-periodic: the value can only change at times_[i] for i >= 1 (the
  // first value back-fills before times_[0], exactly like TraceSeries).
  const auto it = std::upper_bound(times_.begin() + 1, times_.end(), t);
  if (it == times_.end()) return -1;
  return *it;
}

double GridSignal::MeanValue() const {
  if (empty()) throw std::logic_error("GridSignal: empty signal has no mean");
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size()) * scale_;
}

JsonValue GridSignal::ToJson() const {
  if (kind_ == Kind::kEmpty) return JsonValue();
  JsonObject obj;
  switch (kind_) {
    case Kind::kConstant:
      obj["kind"] = "constant";
      obj["value"] = values_.front();
      break;
    case Kind::kDiurnal:
      obj["kind"] = "diurnal";
      obj["base"] = diurnal_base_;
      obj["dip"] = diurnal_dip_;
      obj["peak"] = diurnal_peak_;
      break;
    case Kind::kHourly: {
      obj["kind"] = "hourly";
      JsonArray values(values_.begin(), values_.end());
      obj["values"] = JsonValue(std::move(values));
      break;
    }
    case Kind::kSteps: {
      obj["kind"] = "steps";
      JsonArray times;
      times.reserve(times_.size());
      for (SimTime t : times_) times.emplace_back(static_cast<std::int64_t>(t));
      obj["times"] = JsonValue(std::move(times));
      JsonArray values(values_.begin(), values_.end());
      obj["values"] = JsonValue(std::move(values));
      break;
    }
    case Kind::kCsv: {
      obj["kind"] = "csv";
      obj["path"] = csv_path_;
      // The loaded series rides along inline: FromJson prefers it over
      // re-reading the file, so the ToJson/FromJson round trips that sweep
      // expansion performs per scenario cost no disk I/O.
      JsonArray times;
      times.reserve(times_.size());
      for (SimTime t : times_) times.emplace_back(static_cast<std::int64_t>(t));
      obj["times"] = JsonValue(std::move(times));
      JsonArray values(values_.begin(), values_.end());
      obj["values"] = JsonValue(std::move(values));
      break;
    }
    case Kind::kEmpty:
      break;  // unreachable
  }
  obj["scale"] = scale_;
  return JsonValue(std::move(obj));
}

GridSignal GridSignal::FromJson(const JsonValue& v) {
  if (v.is_null()) return GridSignal();
  const JsonObject& obj = v.AsObject();
  std::string kind;
  double scale = 1.0;
  // First pass: kind + scale; the kind then decides which other keys are
  // legal, so a typo'd field is rejected regardless of map iteration order.
  for (const auto& [key, value] : obj) {
    if (key == "kind") {
      kind = value.AsString();
    } else if (key == "scale") {
      scale = value.AsDouble();
    }
  }
  if (kind.empty()) {
    throw std::invalid_argument(
        "GridSignal: missing 'kind' "
        "(constant|diurnal|hourly|steps|csv)");
  }
  const auto check_keys = [&](std::initializer_list<const char*> allowed) {
    for (const auto& [key, value] : obj) {
      (void)value;
      if (key == "kind" || key == "scale") continue;
      bool known = false;
      for (const char* name : allowed) known = known || key == name;
      if (!known) {
        throw std::invalid_argument("GridSignal (" + kind + "): unknown key '" +
                                    key + "'");
      }
    }
  };
  GridSignal s;
  if (kind == "constant") {
    check_keys({"value"});
    s = Constant(v.At("value").AsDouble());
  } else if (kind == "diurnal") {
    check_keys({"base", "dip", "peak"});
    s = Diurnal(v.At("base").AsDouble(), v.GetDouble("dip", 0.6),
                v.GetDouble("peak", 1.3));
  } else if (kind == "hourly") {
    check_keys({"values"});
    std::vector<double> values;
    for (const JsonValue& x : v.At("values").AsArray()) values.push_back(x.AsDouble());
    s = Hourly(std::move(values));
  } else if (kind == "steps") {
    check_keys({"times", "values"});
    std::vector<SimTime> times;
    for (const JsonValue& x : v.At("times").AsArray()) times.push_back(x.AsInt());
    std::vector<double> values;
    for (const JsonValue& x : v.At("values").AsArray()) values.push_back(x.AsDouble());
    s = Steps(std::move(times), std::move(values));
  } else if (kind == "csv") {
    check_keys({"path", "times", "values"});
    const JsonObject& fields = v.AsObject();
    if (fields.count("times") && fields.count("values")) {
      // Serialised form carrying the already-loaded series (see ToJson).
      std::vector<SimTime> times;
      for (const JsonValue& x : v.At("times").AsArray()) times.push_back(x.AsInt());
      std::vector<double> values;
      for (const JsonValue& x : v.At("values").AsArray()) {
        values.push_back(x.AsDouble());
      }
      s = Steps(std::move(times), std::move(values));
      s.kind_ = Kind::kCsv;
      s.csv_path_ = v.At("path").AsString();
    } else {
      s = FromCsv(v.At("path").AsString());
    }
  } else {
    throw std::invalid_argument("GridSignal: unknown kind '" + kind +
                                "' (constant|diurnal|hourly|steps|csv)");
  }
  s.SetScale(scale);
  return s;
}

}  // namespace sraps
