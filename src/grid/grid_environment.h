// GridEnvironment: the facility's electrical context for one simulation —
// a $/kWh price signal, a kg-CO2/kWh carbon-intensity signal, and a
// schedule of demand-response windows during which the grid operator caps
// the facility's wall power.  The engine derives its dynamic power cap from
// this (EffectiveCapW = min of the static cap and every active DR window),
// integrates energy cost and emissions incrementally against the signals,
// and treats every signal boundary / DR edge as an event-calendar event so
// the batched fast path stays bit-identical to tick stepping.
#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "common/time.h"
#include "grid/grid_signal.h"

namespace sraps {

/// One demand-response event: the grid asks the facility to stay under
/// `cap_w` wall watts over [start, end).
struct DrWindow {
  SimTime start = 0;
  SimTime end = 0;  ///< exclusive; must be > start
  double cap_w = 0.0;  ///< must be > 0

  JsonValue ToJson() const;
  static DrWindow FromJson(const JsonValue& v);
};

struct GridEnvironment {
  GridSignal price_usd_per_kwh;
  GridSignal carbon_kg_per_kwh;
  std::vector<DrWindow> dr_windows;
  /// The grid_aware policy may delay a job at most this far past its submit
  /// time while waiting for a cheaper/cleaner window (0 = never delay).
  SimDuration slack_s = 0;

  /// True when cost or emissions accounting has a signal to integrate.
  bool HasSignals() const {
    return !price_usd_per_kwh.empty() || !carbon_kg_per_kwh.empty();
  }
  /// True when the environment affects the run in any way.
  bool HasAny() const { return HasSignals() || !dr_windows.empty(); }

  /// The wall-power cap in force at `t`: the minimum of `static_cap_w`
  /// (0 = uncapped) and every DR window containing `t`.  Returns 0 when
  /// nothing caps.
  double EffectiveCapW(SimTime t, double static_cap_w) const;

  /// Every time in (from, to) at which the effective cap, price, or carbon
  /// intensity can change — DR window edges plus signal boundaries — sorted
  /// and deduplicated.  These become event-calendar events.
  std::vector<SimTime> BoundariesIn(SimTime from, SimTime to) const;

  /// {"price": ..., "carbon": ..., "dr_windows": [...], "slack_s": n};
  /// absent signals are omitted, so an inactive environment dumps as {}.
  JsonValue ToJson() const;
  static GridEnvironment FromJson(const JsonValue& v);
};

/// Structural validation (DR end > start, cap > 0, slack >= 0) with
/// actionable messages; `context` names the owning scenario.  Throws
/// std::invalid_argument.
void ValidateGridEnvironment(const GridEnvironment& env, const std::string& context);

/// Shared sim-window check for time windows (DR windows and node outages):
/// rejects a window [start, end) — `end <= start` means open-ended — that
/// cannot intersect [sim_start, sim_end) and therefore can never take
/// effect, which is almost always a scenario-file typo.  Throws
/// std::invalid_argument naming `what` and both ranges.
void RequireWindowIntersects(const std::string& what, SimTime start, SimTime end,
                             SimTime sim_start, SimTime sim_end);

}  // namespace sraps
