#include "grid/grid_environment.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sraps {

JsonValue DrWindow::ToJson() const {
  JsonObject obj;
  obj["start"] = JsonValue(static_cast<std::int64_t>(start));
  obj["end"] = JsonValue(static_cast<std::int64_t>(end));
  obj["cap_w"] = cap_w;
  return JsonValue(std::move(obj));
}

DrWindow DrWindow::FromJson(const JsonValue& v) {
  DrWindow w;
  for (const auto& [key, value] : v.AsObject()) {
    if (key == "start") {
      w.start = value.AsInt();
    } else if (key == "end") {
      w.end = value.AsInt();
    } else if (key == "cap_w") {
      w.cap_w = value.AsDouble();
    } else {
      throw std::invalid_argument("DrWindow: unknown key '" + key + "'");
    }
  }
  return w;
}

double GridEnvironment::EffectiveCapW(SimTime t, double static_cap_w) const {
  double cap = static_cap_w;
  for (const DrWindow& w : dr_windows) {
    if (w.start <= t && t < w.end) {
      if (cap <= 0.0 || w.cap_w < cap) cap = w.cap_w;
    }
  }
  return cap;
}

std::vector<SimTime> GridEnvironment::BoundariesIn(SimTime from, SimTime to) const {
  std::vector<SimTime> out;
  for (const DrWindow& w : dr_windows) {
    if (w.start > from && w.start < to) out.push_back(w.start);
    if (w.end > from && w.end < to) out.push_back(w.end);
  }
  for (const GridSignal* sig : {&price_usd_per_kwh, &carbon_kg_per_kwh}) {
    if (sig->empty()) continue;
    for (SimTime b = sig->NextBoundaryAfter(from); b >= 0 && b < to;
         b = sig->NextBoundaryAfter(b)) {
      out.push_back(b);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

JsonValue GridEnvironment::ToJson() const {
  JsonObject obj;
  if (!price_usd_per_kwh.empty()) obj["price"] = price_usd_per_kwh.ToJson();
  if (!carbon_kg_per_kwh.empty()) obj["carbon"] = carbon_kg_per_kwh.ToJson();
  if (!dr_windows.empty()) {
    JsonArray windows;
    windows.reserve(dr_windows.size());
    for (const DrWindow& w : dr_windows) windows.push_back(w.ToJson());
    obj["dr_windows"] = JsonValue(std::move(windows));
  }
  if (slack_s != 0) obj["slack_s"] = JsonValue(static_cast<std::int64_t>(slack_s));
  return JsonValue(std::move(obj));
}

GridEnvironment GridEnvironment::FromJson(const JsonValue& v) {
  GridEnvironment env;
  if (v.is_null()) return env;
  for (const auto& [key, value] : v.AsObject()) {
    if (key == "price") {
      env.price_usd_per_kwh = GridSignal::FromJson(value);
    } else if (key == "carbon") {
      env.carbon_kg_per_kwh = GridSignal::FromJson(value);
    } else if (key == "dr_windows") {
      for (const JsonValue& w : value.AsArray()) {
        env.dr_windows.push_back(DrWindow::FromJson(w));
      }
    } else if (key == "slack_s") {
      env.slack_s = value.AsInt();
    } else {
      throw std::invalid_argument("GridEnvironment: unknown key '" + key +
                                  "' (price|carbon|dr_windows|slack_s)");
    }
  }
  return env;
}

void ValidateGridEnvironment(const GridEnvironment& env, const std::string& context) {
  for (const DrWindow& w : env.dr_windows) {
    if (w.end <= w.start) {
      throw std::invalid_argument(
          context + ": demand-response window [" + std::to_string(w.start) + ", " +
          std::to_string(w.end) + ") is empty — end must be > start");
    }
    if (!(w.cap_w > 0.0) || !std::isfinite(w.cap_w)) {
      throw std::invalid_argument(
          context + ": demand-response window at t=" + std::to_string(w.start) +
          " has cap_w = " + std::to_string(w.cap_w) + "; the cap must be > 0 W");
    }
  }
  if (env.slack_s < 0) {
    throw std::invalid_argument(context + ": grid slack_s must be >= 0, got " +
                                std::to_string(env.slack_s));
  }
}

void RequireWindowIntersects(const std::string& what, SimTime start, SimTime end,
                             SimTime sim_start, SimTime sim_end) {
  const bool open_ended = end <= start;
  const bool intersects =
      start < sim_end && (open_ended || end > sim_start);
  if (!intersects) {
    const std::string window =
        open_ended ? "[" + std::to_string(start) + ", never)"
                   : "[" + std::to_string(start) + ", " + std::to_string(end) + ")";
    throw std::invalid_argument(
        what + " " + window + " lies entirely outside the simulated window [" +
        std::to_string(sim_start) + ", " + std::to_string(sim_end) +
        ") and can never take effect — check the scenario's times "
        "(absolute sim seconds) against fast_forward/duration");
  }
}

}  // namespace sraps
