// Power-conversion (rectification + DC/DC) loss model after Wojda et al.
// (ECCE'24), which the paper applies between the simulated IT load and the
// facility feed (§3.1: "power rectification and conversion losses applied").
//
// Losses are modelled per cabinet as loss(P) = c0 + c1*P + c2*P^2, the
// standard quadratic fit for rectifier efficiency curves: a constant
// no-load loss, an ohmic-linear term, and an I^2R term that grows with load.
#pragma once

#include "config/system_config.h"

namespace sraps {

class ConversionLossModel {
 public:
  ConversionLossModel(const ConversionSpec& spec, int total_nodes);

  /// Loss (W) for a given total IT load (W) spread uniformly over cabinets.
  double LossW(double it_power_w) const;

  /// Wall power: IT + loss.
  double WallPowerW(double it_power_w) const { return it_power_w + LossW(it_power_w); }

  /// Conversion efficiency at a given load, IT / wall, in (0,1].
  double Efficiency(double it_power_w) const;

  int num_cabinets() const { return num_cabinets_; }

 private:
  ConversionSpec spec_;
  int num_cabinets_;
};

}  // namespace sraps
