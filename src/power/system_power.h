// System-level power aggregation: combines per-job telemetry-driven node
// power with idle draw of unallocated nodes and conversion losses into the
// full-system power the figures plot (Figs. 4-8, 10a).
#pragma once

#include <vector>

#include "config/system_config.h"
#include "power/conversion.h"
#include "workload/job.h"

namespace sraps {

/// One tick's electrical state.
struct PowerSample {
  double it_power_w = 0.0;    ///< sum of node draws (busy + idle)
  double busy_power_w = 0.0;  ///< the job-attributable share of it_power_w
  double loss_w = 0.0;        ///< conversion loss
  double wall_power_w = 0.0;  ///< it + loss (cooling power is added by the
                              ///< cooling model when present)
  double node_utilization = 0.0;  ///< allocated nodes / total nodes
  int busy_nodes = 0;
};

class SystemPowerModel {
 public:
  explicit SystemPowerModel(const SystemConfig& config);

  /// Mean per-node power (W) of a running job at `elapsed` seconds after its
  /// start.  Prefers the job's direct power trace; otherwise runs the
  /// component model on its utilisation traces; otherwise assumes a busy
  /// node at nominal utilisation (0.7/0.6) — documented fallback for summary
  /// datasets without power data.
  double JobNodePowerW(const Job& job, SimDuration elapsed,
                       const NodePowerSpec& spec) const;

  /// Aggregates the whole system at time `now` given the running jobs (their
  /// `assigned_nodes` and `start` must be set).  When `job_power_w` is
  /// non-null it receives each job's total draw (indexed like `running`) so
  /// the engine's energy integration can reuse the already-sampled values
  /// instead of re-walking every trace.  Not thread-safe (reuses scratch
  /// buffers); engines own their model, so this never crosses threads.
  PowerSample Compute(const std::vector<const Job*>& running, SimTime now,
                      std::vector<double>* job_power_w = nullptr) const;

  const SystemConfig& config() const { return config_; }
  const ConversionLossModel& conversion() const { return conversion_; }

 private:
  SystemConfig config_;
  ConversionLossModel conversion_;
  std::vector<double> partition_idle_node_w_;  ///< idle W per node, per partition
  std::vector<int> partition_sizes_;
  // Per-Compute scratch (why Compute is not thread-safe).
  mutable std::vector<int> busy_scratch_;
  mutable std::vector<int> count_scratch_;
};

}  // namespace sraps
