// System-level power aggregation: combines per-job telemetry-driven node
// power with idle draw of unallocated nodes and conversion losses into the
// full-system power the figures plot (Figs. 4-8, 10a).
//
// When the engine runs nodes in non-trivial power states it passes a
// PowerStateView: busy nodes then draw their P-state-scaled power, sleeping
// nodes draw their C/S state power instead of the active idle wall draw, and
// the sample reports the frequency-weighted busy-node sum the engine uses to
// dilate job runtimes.  Without a view the legacy always-on arithmetic runs
// bit-identically to the pre-power-state model.
#pragma once

#include <cstdint>
#include <vector>

#include "config/system_config.h"
#include "power/conversion.h"
#include "workload/job.h"

namespace sraps {

/// One tick's electrical state.
struct PowerSample {
  double it_power_w = 0.0;    ///< sum of node draws (busy + idle + sleeping)
  double busy_power_w = 0.0;  ///< the job-attributable share of it_power_w
  double loss_w = 0.0;        ///< conversion loss
  double wall_power_w = 0.0;  ///< it + loss (cooling power is added by the
                              ///< cooling model when present)
  double node_utilization = 0.0;  ///< allocated nodes / total nodes
  int busy_nodes = 0;
  /// Sum of the active freq_scale over all busy nodes; equals busy_nodes
  /// when everything runs at P0.  busy_freq_sum / busy_nodes is the mean
  /// clock the "avg_freq_scale" telemetry channel plots.
  double busy_freq_sum = 0.0;
};

/// Read-only view of the engine's per-node power state, borrowed for the
/// duration of one Compute call.  `node_pstate` maps global node id to its
/// P-state rung; the per-class counters say how many nodes of each machine
/// class currently sit in the C or S state (nodes mid-wake draw active idle
/// and are in neither counter).
struct PowerStateView {
  const std::vector<std::uint8_t>* node_pstate = nullptr;
  const std::vector<int>* class_c_idle = nullptr;
  const std::vector<int>* class_s_sleep = nullptr;
};

class SystemPowerModel {
 public:
  explicit SystemPowerModel(const SystemConfig& config);

  /// Mean per-node power (W) of a running job at `elapsed` seconds after its
  /// start.  Prefers the job's direct power trace; otherwise runs the
  /// component model on its utilisation traces; otherwise assumes a busy
  /// node at nominal utilisation (0.7/0.6) — documented fallback for summary
  /// datasets without power data.
  double JobNodePowerW(const Job& job, SimDuration elapsed,
                       const NodePowerSpec& spec) const;

  /// Aggregates the whole system at time `now` given the running jobs (their
  /// `assigned_nodes` and `start` must be set).  When `job_power_w` is
  /// non-null it receives each job's total draw (indexed like `running`) so
  /// the engine's energy integration can reuse the already-sampled values
  /// instead of re-walking every trace.
  ///
  /// `power_states`, when non-null, switches to power-state-aware
  /// aggregation (see file comment).  `job_freq_scale`, when non-null,
  /// receives each job's effective frequency scale — the minimum rung across
  /// the nodes it runs on, 1.0 at P0 — for runtime dilation.  `class_it_w`,
  /// when non-null, is resized to the class count and receives each class's
  /// IT draw (busy + idle + sleeping; conversion loss is system-level and
  /// excluded) for the per-class energy breakdown.  Not thread-safe (reuses
  /// scratch buffers); engines own their model, so this never crosses
  /// threads.
  /// `node_busy_w`, when non-null, is resized to the total node count and
  /// receives each busy node's draw (P-state-scaled when a view is active);
  /// non-busy nodes are marked -1.0 so the caller can substitute the
  /// idle/sleep draw — this is the per-node heat source the thermal
  /// topology folds into inlet temperatures.
  PowerSample Compute(const std::vector<const Job*>& running, SimTime now,
                      std::vector<double>* job_power_w = nullptr,
                      const PowerStateView* power_states = nullptr,
                      std::vector<double>* job_freq_scale = nullptr,
                      std::vector<double>* class_it_w = nullptr,
                      std::vector<double>* node_busy_w = nullptr) const;

  const SystemConfig& config() const { return config_; }
  const ConversionLossModel& conversion() const { return conversion_; }

 private:
  SystemConfig config_;
  ConversionLossModel conversion_;
  std::vector<double> class_idle_node_w_;  ///< idle W per node, per class
  std::vector<int> class_sizes_;
  int max_pstates_ = 1;  ///< stride of the (class, rung) grouping scratch
  // Per-Compute scratch (why Compute is not thread-safe).
  mutable std::vector<int> busy_scratch_;
  mutable std::vector<int> count_scratch_;
  mutable std::vector<double> class_node_w_scratch_;
};

}  // namespace sraps
