// Node power model: converts instantaneous utilisation to electrical draw.
// This is the RAPS power model role — "the power simulation is not a mere
// aggregation of synchronized trace information, but an accurate computation
// of component behavior" (§5): each component (CPU sockets, GPUs, memory,
// NIC) contributes idle + utilisation-proportional dynamic power.
#pragma once

#include "config/system_config.h"

namespace sraps {

/// Instantaneous utilisation of one node.
struct NodeUtilization {
  double cpu = 0.0;  ///< [0,1]
  double gpu = 0.0;  ///< [0,1]
};

/// Power of one busy node (watts) under the given utilisation.
/// Utilisation outside [0,1] is clamped.
double BusyNodePowerW(const NodePowerSpec& spec, const NodeUtilization& util);

/// P-state-aware variant: the dynamic share (everything above IdleW) scales
/// by `pstate.power_scale`; the idle wall draw is unaffected.  At the
/// identity rung {1.0, 1.0} this returns exactly the legacy value.
double BusyNodePowerW(const NodePowerSpec& spec, const NodeUtilization& util,
                      const PState& pstate);

/// Power of one idle (unallocated) node in watts.
double IdleNodePowerW(const NodePowerSpec& spec);

/// Utilisation implied by a measured node power (inverse model), assuming the
/// CPU/GPU split is proportional to their dynamic ranges.  Used by datasets
/// that provide power traces but no utilisation (PM100 node power).  Result
/// components are clamped to [0,1].
NodeUtilization UtilizationFromPowerW(const NodePowerSpec& spec, double node_power_w);

/// P-state-aware inverse model: a node down-clocked to `pstate` draws
/// idle + power_scale * dynamic, so the measured excess over idle must be
/// divided by power_scale *before* mapping onto the full-speed dynamic range
/// — the legacy inverse under-reported utilisation of down-clocked nodes.
/// Clamping matches the forward model: the excess-over-idle fraction is
/// clamped to [0,1] once, after the P-state correction.  A non-positive
/// power_scale yields zero utilisation.
NodeUtilization UtilizationFromPowerW(const NodePowerSpec& spec,
                                      double node_power_w,
                                      const PState& pstate);

}  // namespace sraps
