// Node power model: converts instantaneous utilisation to electrical draw.
// This is the RAPS power model role — "the power simulation is not a mere
// aggregation of synchronized trace information, but an accurate computation
// of component behavior" (§5): each component (CPU sockets, GPUs, memory,
// NIC) contributes idle + utilisation-proportional dynamic power.
#pragma once

#include "config/system_config.h"

namespace sraps {

/// Instantaneous utilisation of one node.
struct NodeUtilization {
  double cpu = 0.0;  ///< [0,1]
  double gpu = 0.0;  ///< [0,1]
};

/// Power of one busy node (watts) under the given utilisation.
/// Utilisation outside [0,1] is clamped.
double BusyNodePowerW(const NodePowerSpec& spec, const NodeUtilization& util);

/// Power of one idle (unallocated) node in watts.
double IdleNodePowerW(const NodePowerSpec& spec);

/// Utilisation implied by a measured node power (inverse model), assuming the
/// CPU/GPU split is proportional to their dynamic ranges.  Used by datasets
/// that provide power traces but no utilisation (PM100 node power).  Result
/// components are clamped to [0,1].
NodeUtilization UtilizationFromPowerW(const NodePowerSpec& spec, double node_power_w);

}  // namespace sraps
