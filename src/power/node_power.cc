#include "power/node_power.h"

#include "common/mathutil.h"

namespace sraps {

double BusyNodePowerW(const NodePowerSpec& spec, const NodeUtilization& util) {
  const double cpu = Clamp(util.cpu, 0.0, 1.0);
  const double gpu = Clamp(util.gpu, 0.0, 1.0);
  double p = spec.idle_w + spec.mem_w + spec.nic_w;
  p += spec.cpus_per_node * (spec.cpu_idle_w + cpu * (spec.cpu_max_w - spec.cpu_idle_w));
  p += spec.gpus_per_node * (spec.gpu_idle_w + gpu * (spec.gpu_max_w - spec.gpu_idle_w));
  return p;
}

double BusyNodePowerW(const NodePowerSpec& spec, const NodeUtilization& util,
                      const PState& pstate) {
  const double full = BusyNodePowerW(spec, util);
  if (pstate.power_scale == 1.0) return full;
  const double idle = spec.IdleW();
  return idle + pstate.power_scale * (full - idle);
}

double IdleNodePowerW(const NodePowerSpec& spec) { return spec.IdleW(); }

NodeUtilization UtilizationFromPowerW(const NodePowerSpec& spec, double node_power_w) {
  return UtilizationFromPowerW(spec, node_power_w, PState{});
}

NodeUtilization UtilizationFromPowerW(const NodePowerSpec& spec,
                                      double node_power_w,
                                      const PState& pstate) {
  const double dynamic_cpu = spec.cpus_per_node * (spec.cpu_max_w - spec.cpu_idle_w);
  const double dynamic_gpu = spec.gpus_per_node * (spec.gpu_max_w - spec.gpu_idle_w);
  const double dynamic_total = dynamic_cpu + dynamic_gpu;
  NodeUtilization u;
  if (dynamic_total <= 0.0) return u;
  if (pstate.power_scale <= 0.0) return u;
  // Undo the P-state's dynamic-power compression before mapping onto the
  // full-speed range; at power_scale == 1.0 the division is exact identity.
  const double excess = (node_power_w - spec.IdleW()) / pstate.power_scale;
  const double fraction = Clamp(excess / dynamic_total, 0.0, 1.0);
  // Proportional split: both components run at the same fraction of their
  // dynamic range — the max-entropy assumption absent further telemetry.
  u.cpu = fraction;
  u.gpu = fraction;
  return u;
}

}  // namespace sraps
