#include "power/conversion.h"

#include <algorithm>
#include <stdexcept>

namespace sraps {

ConversionLossModel::ConversionLossModel(const ConversionSpec& spec, int total_nodes)
    : spec_(spec) {
  if (spec.nodes_per_cabinet <= 0) {
    throw std::invalid_argument("ConversionLossModel: nodes_per_cabinet <= 0");
  }
  if (total_nodes <= 0) throw std::invalid_argument("ConversionLossModel: no nodes");
  num_cabinets_ = (total_nodes + spec.nodes_per_cabinet - 1) / spec.nodes_per_cabinet;
}

double ConversionLossModel::LossW(double it_power_w) const {
  if (it_power_w < 0.0) it_power_w = 0.0;
  const double per_cabinet = it_power_w / num_cabinets_;
  const double loss_per_cabinet = spec_.idle_loss_w + spec_.linear_coeff * per_cabinet +
                                  spec_.quadratic_coeff * per_cabinet * per_cabinet;
  return loss_per_cabinet * num_cabinets_;
}

double ConversionLossModel::Efficiency(double it_power_w) const {
  const double wall = WallPowerW(it_power_w);
  if (wall <= 0.0) return 1.0;
  return std::max(0.0, it_power_w / wall);
}

}  // namespace sraps
