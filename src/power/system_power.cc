#include "power/system_power.h"

#include <stdexcept>

#include "power/node_power.h"

namespace sraps {

SystemPowerModel::SystemPowerModel(const SystemConfig& config)
    : config_(config), conversion_(config.conversion, config.TotalNodes()) {
  for (const auto& p : config_.partitions) {
    partition_idle_node_w_.push_back(p.node_power.IdleW());
    partition_sizes_.push_back(p.num_nodes);
  }
}

double SystemPowerModel::JobNodePowerW(const Job& job, SimDuration elapsed,
                                       const NodePowerSpec& spec) const {
  if (!job.node_power_w.empty()) return job.node_power_w.Sample(elapsed);
  if (!job.cpu_util.empty() || !job.gpu_util.empty()) {
    NodeUtilization u;
    if (!job.cpu_util.empty()) u.cpu = job.cpu_util.Sample(elapsed);
    if (!job.gpu_util.empty()) u.gpu = job.gpu_util.Sample(elapsed);
    return BusyNodePowerW(spec, u);
  }
  // No telemetry at all: nominal busy node.  Summary-only datasets should
  // instead populate node_power_w with a constant trace.
  return BusyNodePowerW(spec, NodeUtilization{0.7, 0.6});
}

PowerSample SystemPowerModel::Compute(const std::vector<const Job*>& running,
                                      SimTime now,
                                      std::vector<double>* job_power_w) const {
  PowerSample s;
  busy_scratch_.assign(config_.partitions.size(), 0);
  std::vector<int>& busy_per_partition = busy_scratch_;
  if (job_power_w) {
    job_power_w->clear();
    job_power_w->reserve(running.size());
  }
  double busy_power = 0.0;
  for (const Job* job : running) {
    if (job->start < 0) {
      throw std::logic_error("SystemPowerModel: running job has no start");
    }
    const SimDuration elapsed = now - job->start;
    if (job->assigned_nodes.empty()) {
      throw std::logic_error("SystemPowerModel: running job has no nodes");
    }
    // Group the job's nodes by partition so heterogeneous allocations use
    // the right per-node spec.
    count_scratch_.assign(config_.partitions.size(), 0);
    std::vector<int>& count_per_partition = count_scratch_;
    for (int node : job->assigned_nodes) {
      ++count_per_partition[config_.PartitionOf(node)];
    }
    // The per-job subtotal keeps its own accumulator: consumers integrating
    // job energy must see the exact sum the engine historically computed.
    double job_power = 0.0;
    for (std::size_t p = 0; p < count_per_partition.size(); ++p) {
      const int n = count_per_partition[p];
      if (n == 0) continue;
      const double node_w =
          JobNodePowerW(*job, elapsed, config_.partitions[p].node_power);
      busy_per_partition[p] += n;
      busy_power += n * node_w;
      job_power += n * node_w;
    }
    if (job_power_w) job_power_w->push_back(job_power);
    s.busy_nodes += static_cast<int>(job->assigned_nodes.size());
  }
  double idle_power = 0.0;
  for (std::size_t p = 0; p < partition_sizes_.size(); ++p) {
    const int idle_nodes = partition_sizes_[p] - busy_per_partition[p];
    if (idle_nodes < 0) {
      throw std::logic_error("SystemPowerModel: partition oversubscribed");
    }
    idle_power += idle_nodes * partition_idle_node_w_[p];
  }
  s.busy_power_w = busy_power;
  s.it_power_w = busy_power + idle_power;
  s.loss_w = conversion_.LossW(s.it_power_w);
  s.wall_power_w = s.it_power_w + s.loss_w;
  const int total = config_.TotalNodes();
  s.node_utilization = total > 0 ? static_cast<double>(s.busy_nodes) / total : 0.0;
  return s;
}

}  // namespace sraps
