#include "power/system_power.h"

#include <algorithm>
#include <stdexcept>

#include "power/node_power.h"

namespace sraps {

SystemPowerModel::SystemPowerModel(const SystemConfig& config)
    : config_(config), conversion_(config.conversion, config.TotalNodes()) {
  for (const auto& m : config_.machines) {
    class_idle_node_w_.push_back(m.node_power.IdleW());
    class_sizes_.push_back(m.num_nodes);
  }
  max_pstates_ = config_.MaxPStates();
}

double SystemPowerModel::JobNodePowerW(const Job& job, SimDuration elapsed,
                                       const NodePowerSpec& spec) const {
  if (!job.node_power_w.empty()) return job.node_power_w.Sample(elapsed);
  if (!job.cpu_util.empty() || !job.gpu_util.empty()) {
    NodeUtilization u;
    if (!job.cpu_util.empty()) u.cpu = job.cpu_util.Sample(elapsed);
    if (!job.gpu_util.empty()) u.gpu = job.gpu_util.Sample(elapsed);
    return BusyNodePowerW(spec, u);
  }
  // No telemetry at all: nominal busy node.  Summary-only datasets should
  // instead populate node_power_w with a constant trace.
  return BusyNodePowerW(spec, NodeUtilization{0.7, 0.6});
}

PowerSample SystemPowerModel::Compute(const std::vector<const Job*>& running,
                                      SimTime now,
                                      std::vector<double>* job_power_w,
                                      const PowerStateView* power_states,
                                      std::vector<double>* job_freq_scale,
                                      std::vector<double>* class_it_w,
                                      std::vector<double>* node_busy_w) const {
  PowerSample s;
  const std::size_t num_classes = config_.machines.size();
  if (node_busy_w) {
    node_busy_w->assign(static_cast<std::size_t>(config_.TotalNodes()), -1.0);
  }
  busy_scratch_.assign(num_classes, 0);
  std::vector<int>& busy_per_class = busy_scratch_;
  if (job_power_w) {
    job_power_w->clear();
    job_power_w->reserve(running.size());
  }
  if (job_freq_scale) {
    job_freq_scale->clear();
    job_freq_scale->reserve(running.size());
  }
  if (class_it_w) class_it_w->assign(num_classes, 0.0);
  const bool ps = power_states != nullptr;
  // The (class, rung) grouping scratch: rung-major within each class.  In
  // legacy mode the stride collapses to the class index.
  const std::size_t stride =
      ps ? static_cast<std::size_t>(max_pstates_) : std::size_t{1};
  double busy_power = 0.0;
  for (const Job* job : running) {
    if (job->start < 0) {
      throw std::logic_error("SystemPowerModel: running job has no start");
    }
    const SimDuration elapsed = now - job->start;
    if (job->assigned_nodes.empty()) {
      throw std::logic_error("SystemPowerModel: running job has no nodes");
    }
    // Group the job's nodes by class (and P-state rung, when active) so
    // heterogeneous allocations use the right per-node spec.
    count_scratch_.assign(num_classes * stride, 0);
    std::vector<int>& count_per_group = count_scratch_;
    double job_freq = 1.0;
    for (int node : job->assigned_nodes) {
      const std::size_t cls = config_.ClassOf(node);
      std::size_t rung = 0;
      if (ps) {
        rung = (*power_states->node_pstate)[static_cast<std::size_t>(node)];
        if (rung != 0) {
          job_freq = std::min(
              job_freq,
              config_.machines[cls].PStateAt(static_cast<int>(rung)).freq_scale);
        }
      }
      ++count_per_group[cls * stride + rung];
    }
    // The per-job subtotal keeps its own accumulator: consumers integrating
    // job energy must see the exact sum the engine historically computed.
    double job_power = 0.0;
    if (node_busy_w) class_node_w_scratch_.assign(num_classes, -1.0);
    for (std::size_t c = 0; c < num_classes; ++c) {
      double cached_node_w = -1.0;
      for (std::size_t r = 0; r < stride; ++r) {
        const int n = count_per_group[c * stride + r];
        if (n == 0) continue;
        if (cached_node_w < 0.0) {
          cached_node_w =
              JobNodePowerW(*job, elapsed, config_.machines[c].node_power);
          if (node_busy_w) class_node_w_scratch_[c] = cached_node_w;
        }
        const double node_w =
            r == 0 ? cached_node_w
                   : config_.machines[c].ScaledBusyPowerW(static_cast<int>(r),
                                                          cached_node_w);
        busy_per_class[c] += n;
        busy_power += n * node_w;
        job_power += n * node_w;
        if (class_it_w) (*class_it_w)[c] += n * node_w;
        s.busy_freq_sum +=
            n * (r == 0 ? 1.0
                        : config_.machines[c].PStateAt(static_cast<int>(r))
                              .freq_scale);
      }
    }
    if (job_power_w) job_power_w->push_back(job_power);
    if (job_freq_scale) job_freq_scale->push_back(job_freq);
    if (node_busy_w) {
      // Second pass over the job's nodes, reusing the per-class base draw
      // the grouped accumulation above already sampled.
      for (int node : job->assigned_nodes) {
        const std::size_t cls = config_.ClassOf(node);
        std::size_t rung = 0;
        if (ps) {
          rung = (*power_states->node_pstate)[static_cast<std::size_t>(node)];
        }
        const double base = class_node_w_scratch_[cls];
        (*node_busy_w)[static_cast<std::size_t>(node)] =
            rung == 0 ? base
                      : config_.machines[cls].ScaledBusyPowerW(
                            static_cast<int>(rung), base);
      }
    }
    s.busy_nodes += static_cast<int>(job->assigned_nodes.size());
  }
  double idle_power = 0.0;
  for (std::size_t c = 0; c < num_classes; ++c) {
    int asleep_c = 0;
    int asleep_s = 0;
    if (ps) {
      if (power_states->class_c_idle) asleep_c = (*power_states->class_c_idle)[c];
      if (power_states->class_s_sleep) asleep_s = (*power_states->class_s_sleep)[c];
    }
    const int idle_nodes =
        class_sizes_[c] - busy_per_class[c] - asleep_c - asleep_s;
    if (idle_nodes < 0) {
      throw std::logic_error("SystemPowerModel: machine class oversubscribed");
    }
    double class_power = idle_nodes * class_idle_node_w_[c];
    if (asleep_c > 0) {
      class_power += asleep_c * config_.machines[c].SleepPowerW(false);
    }
    if (asleep_s > 0) {
      class_power += asleep_s * config_.machines[c].SleepPowerW(true);
    }
    idle_power += class_power;
    if (class_it_w) (*class_it_w)[c] += class_power;
  }
  s.busy_power_w = busy_power;
  s.it_power_w = busy_power + idle_power;
  s.loss_w = conversion_.LossW(s.it_power_w);
  s.wall_power_w = s.it_power_w + s.loss_w;
  const int total = config_.TotalNodes();
  s.node_utilization = total > 0 ? static_cast<double>(s.busy_nodes) / total : 0.0;
  return s;
}

}  // namespace sraps
