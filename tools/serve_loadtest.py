#!/usr/bin/env python3
"""Closed-loop load test for sraps_serve (stdlib only).

Opens N keep-alive connections, each driving POST /whatif queries back to
back against a warm snapshot cache, and reports throughput and latency
percentiles.  Exits non-zero when any query fails or when throughput falls
below the target, so CI can gate on it:

    # full target: >= 1000 queries/s sustained
    python3 tools/serve_loadtest.py --port 8080

    # CI smoke: shorter run, scaled-down target (see --quick)
    python3 tools/serve_loadtest.py --port 8080 --quick

    # byte-identity probe: same query on two fresh connections must match
    python3 tools/serve_loadtest.py --port 8080 --check-determinism

The full-mode throughput floor is --target (default 1000 qps, the repo's
bench-baseline figure for serve_forks_per_sec).  --quick runs fewer
connections for less time and asserts QUICK_TARGET_RATIO of the same
target, keeping the ratio to the 1000 qps acceptance figure explicit.
"""

import argparse
import http.client
import json
import statistics
import sys
import threading
import time

# --quick asserts this fraction of --target: smoke runners are small and
# shared, but a warm cache should still clear a quarter of the full floor.
QUICK_TARGET_RATIO = 0.25


def pick_base(host, port):
    conn = http.client.HTTPConnection(host, port, timeout=10)
    conn.request("GET", "/healthz")
    resp = conn.getresponse()
    health = json.loads(resp.read())
    conn.close()
    if resp.status != 200 or not health.get("bases"):
        raise SystemExit(f"healthz says no bases are loaded: {health}")
    return health["bases"][0]


def query_bodies(base, plain):
    if plain:
        return [json.dumps({"base": base})]
    scales = [0.5, 0.8, 1.0, 1.25, 2.0]
    return [
        json.dumps({"base": base, "patch": {"grid.price.scale": s}})
        for s in scales
    ]


def worker(host, port, bodies, deadline, out):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    latencies, statuses = [], {}
    i = 0
    while time.monotonic() < deadline:
        body = bodies[i % len(bodies)]
        i += 1
        t0 = time.monotonic()
        conn.request("POST", "/whatif", body=body,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        resp.read()
        latencies.append((time.monotonic() - t0) * 1000.0)
        statuses[resp.status] = statuses.get(resp.status, 0) + 1
    conn.close()
    out.append((latencies, statuses))


def run_load(args):
    base = args.base or pick_base(args.host, args.port)
    bodies = query_bodies(base, args.plain)
    results = []
    deadline = time.monotonic() + args.duration
    t_start = time.monotonic()
    threads = [
        threading.Thread(target=worker,
                         args=(args.host, args.port, bodies, deadline, results))
        for _ in range(args.connections)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - t_start

    latencies = [l for lat, _ in results for l in lat]
    statuses = {}
    for _, st in results:
        for code, n in st.items():
            statuses[code] = statuses.get(code, 0) + n
    total = sum(statuses.values())
    qps = total / elapsed if elapsed > 0 else 0.0
    target = args.target * (QUICK_TARGET_RATIO if args.quick else 1.0)

    summary = {
        "base": base,
        "connections": args.connections,
        "duration_s": round(elapsed, 3),
        "queries": total,
        "queries_per_s": round(qps, 1),
        "target_queries_per_s": target,
        "quick_target_ratio": QUICK_TARGET_RATIO if args.quick else 1.0,
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
    }
    if latencies:
        latencies.sort()
        summary["latency_ms"] = {
            "p50": round(statistics.median(latencies), 3),
            "p99": round(latencies[int(0.99 * (len(latencies) - 1))], 3),
            "max": round(latencies[-1], 3),
        }
    print(json.dumps(summary, indent=2))

    failures = {k: v for k, v in statuses.items() if k != 200}
    if failures:
        print(f"FAIL: non-200 responses: {failures}", file=sys.stderr)
        return 1
    if total == 0:
        print("FAIL: no queries completed", file=sys.stderr)
        return 1
    if qps < target:
        print(
            f"FAIL: {qps:.1f} queries/s is below the target of {target:.1f} "
            f"({args.target} x {summary['quick_target_ratio']})",
            file=sys.stderr)
        return 1
    print(f"PASS: {qps:.1f} queries/s >= {target:.1f}")
    return 0


def check_determinism(args):
    """The issue's byte-identity guarantee, probed end to end: the same query
    sent over two fresh connections must return byte-identical bodies."""
    base = args.base or pick_base(args.host, args.port)
    failures = 0
    for body in query_bodies(base, args.plain) + [json.dumps({"base": base})]:
        replies = []
        for _ in range(2):
            conn = http.client.HTTPConnection(args.host, args.port, timeout=30)
            conn.request("POST", "/whatif", body=body,
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            replies.append((resp.status, resp.read()))
            conn.close()
        if replies[0] != replies[1]:
            print(f"FAIL: non-deterministic reply for {body}", file=sys.stderr)
            failures += 1
        elif replies[0][0] != 200:
            print(f"FAIL: status {replies[0][0]} for {body}", file=sys.stderr)
            failures += 1
    if failures:
        return 3
    print("PASS: all queries returned byte-identical bodies across connections")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=8080)
    ap.add_argument("--base", default=None,
                    help="base scenario name (default: first from /healthz)")
    ap.add_argument("--connections", type=int, default=8)
    ap.add_argument("--duration", type=float, default=10.0, help="seconds")
    ap.add_argument("--target", type=float, default=1000.0,
                    help="queries/s floor in full mode")
    ap.add_argument("--quick", action="store_true",
                    help=f"3 s x 4 connections, asserting "
                         f"{QUICK_TARGET_RATIO} of --target")
    ap.add_argument("--plain", action="store_true",
                    help="query the base unmodified instead of scale patches")
    ap.add_argument("--check-determinism", action="store_true",
                    help="byte-compare identical queries instead of load")
    args = ap.parse_args()
    if args.quick:
        args.connections = 4
        args.duration = 3.0
    if args.check_determinism:
        sys.exit(check_determinism(args))
    sys.exit(run_load(args))


if __name__ == "__main__":
    main()
